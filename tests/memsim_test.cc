#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "memsim/managed_allocator.h"
#include "memsim/managed_heap.h"

namespace itask::memsim {
namespace {

HeapConfig FastConfig(std::uint64_t capacity) {
  HeapConfig config;
  config.capacity_bytes = capacity;
  config.real_pauses = false;  // Accounted but not spun — fast tests.
  return config;
}

TEST(ManagedHeapTest, AllocateAndFreeAccounting) {
  ManagedHeap heap(FastConfig(1 << 20));
  heap.Allocate(1000);
  EXPECT_EQ(heap.live_bytes(), 1000u);
  heap.Free(400);
  EXPECT_EQ(heap.live_bytes(), 600u);
  EXPECT_EQ(heap.garbage_bytes(), 400u);
  EXPECT_EQ(heap.used_bytes(), 1000u);
}

TEST(ManagedHeapTest, CollectReclaimsGarbageOnly) {
  ManagedHeap heap(FastConfig(1 << 20));
  heap.Allocate(1000);
  heap.Free(400);
  const GcEvent event = heap.Collect();
  EXPECT_EQ(event.reclaimed_bytes, 400u);
  EXPECT_EQ(heap.live_bytes(), 600u);
  EXPECT_EQ(heap.garbage_bytes(), 0u);
  EXPECT_FALSE(event.useless);
}

TEST(ManagedHeapTest, GcTriggeredByAllocationPressure) {
  ManagedHeap heap(FastConfig(1000));
  heap.Allocate(600);
  heap.Free(600);         // All garbage.
  heap.Allocate(600);     // Does not fit until the garbage is collected.
  EXPECT_EQ(heap.live_bytes(), 600u);
  EXPECT_GE(heap.Stats().gc_count, 1u);
}

TEST(ManagedHeapTest, OutOfMemoryWhenLiveExceedsCapacity) {
  ManagedHeap heap(FastConfig(1000));
  heap.Allocate(900);
  EXPECT_THROW(heap.Allocate(200), OutOfMemoryError);
  EXPECT_EQ(heap.Stats().ome_count, 1u);
  // Live data is untouched by the failed allocation.
  EXPECT_EQ(heap.live_bytes(), 900u);
}

TEST(ManagedHeapTest, TryAllocateDoesNotThrow) {
  ManagedHeap heap(FastConfig(1000));
  EXPECT_TRUE(heap.TryAllocate(500));
  EXPECT_FALSE(heap.TryAllocate(600));
  EXPECT_EQ(heap.Stats().ome_count, 0u);
}

TEST(ManagedHeapTest, LugcDetectedWhenHeapFullOfLiveData) {
  HeapConfig config = FastConfig(1000);
  config.lugc_free_fraction = 0.10;
  ManagedHeap heap(config);
  heap.Allocate(950);  // 95% live.
  const GcEvent event = heap.Collect();
  EXPECT_TRUE(event.useless);
  EXPECT_EQ(heap.Stats().lugc_count, 1u);
}

TEST(ManagedHeapTest, GcNotUselessWithHeadroom) {
  HeapConfig config = FastConfig(1000);
  config.lugc_free_fraction = 0.10;
  ManagedHeap heap(config);
  heap.Allocate(500);
  EXPECT_FALSE(heap.Collect().useless);
  EXPECT_EQ(heap.Stats().lugc_count, 0u);
}

TEST(ManagedHeapTest, ListenersSeeLugcEvents) {
  HeapConfig config = FastConfig(1000);
  ManagedHeap heap(config);
  std::atomic<int> lugc_seen{0};
  heap.AddGcListener([&](const GcEvent& e) {
    if (e.useless) {
      ++lugc_seen;
    }
  });
  heap.Allocate(950);
  heap.Collect();
  EXPECT_EQ(lugc_seen.load(), 1);
}

TEST(ManagedHeapTest, PauseAccountedProportionalToScannedBytes) {
  HeapConfig config = FastConfig(10 << 20);
  config.gc_base_ns = 0;
  config.gc_ns_per_byte = 1.0;
  ManagedHeap heap(config);
  heap.Allocate(1 << 20);
  const GcEvent small = heap.Collect();
  heap.Allocate(4 << 20);
  const GcEvent big = heap.Collect();
  EXPECT_GT(big.pause_ns, small.pause_ns * 3);
}

TEST(ManagedHeapTest, GrowHeadroomIgnoresGarbage) {
  HeapConfig config = FastConfig(1000);
  config.grow_free_fraction = 0.20;
  ManagedHeap heap(config);
  heap.Allocate(900);
  EXPECT_FALSE(heap.HasGrowHeadroom());
  heap.Free(500);  // Garbage, but collectable: headroom counts it as free.
  EXPECT_TRUE(heap.HasGrowHeadroom());
}

TEST(ManagedHeapTest, PeakTracksHighWaterMark) {
  ManagedHeap heap(FastConfig(1 << 20));
  heap.Allocate(1000);
  heap.Free(1000);
  heap.Collect();
  heap.Allocate(200);
  EXPECT_EQ(heap.Stats().peak_used_bytes, 1000u);
}

TEST(ManagedHeapTest, OverFreeIsClamped) {
  ManagedHeap heap(FastConfig(1 << 20));
  heap.Allocate(100);
  heap.Free(500);  // Bug in caller: clamped, logged, no underflow.
  EXPECT_EQ(heap.live_bytes(), 0u);
  EXPECT_EQ(heap.garbage_bytes(), 100u);
}

TEST(ManagedHeapTest, ConcurrentAllocFreeBalances) {
  ManagedHeap heap(FastConfig(64 << 20));
  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        heap.Allocate(64);
        heap.Free(64);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  heap.Collect();
  EXPECT_EQ(heap.live_bytes(), 0u);
  EXPECT_EQ(heap.garbage_bytes(), 0u);
}

TEST(HeapChargeTest, ReleasesOnDestruction) {
  ManagedHeap heap(FastConfig(1 << 20));
  {
    HeapCharge charge(&heap, 500);
    EXPECT_EQ(heap.live_bytes(), 500u);
  }
  EXPECT_EQ(heap.live_bytes(), 0u);
  EXPECT_EQ(heap.garbage_bytes(), 500u);
}

TEST(HeapChargeTest, MoveTransfersOwnership) {
  ManagedHeap heap(FastConfig(1 << 20));
  HeapCharge a(&heap, 100);
  HeapCharge b = std::move(a);
  EXPECT_EQ(a.bytes(), 0u);
  EXPECT_EQ(b.bytes(), 100u);
  EXPECT_EQ(heap.live_bytes(), 100u);
}

TEST(HeapChargeTest, ShrinkPartiallyReleases) {
  ManagedHeap heap(FastConfig(1 << 20));
  HeapCharge charge(&heap, 1000);
  charge.Shrink(300);
  EXPECT_EQ(charge.bytes(), 700u);
  EXPECT_EQ(heap.live_bytes(), 700u);
  charge.Shrink(10'000);  // Clamped to remaining.
  EXPECT_EQ(charge.bytes(), 0u);
}

TEST(ManagedAllocatorTest, VectorChargesHeap) {
  ManagedHeap heap(FastConfig(1 << 20));
  {
    std::vector<std::uint64_t, ManagedAllocator<std::uint64_t>> v{
        ManagedAllocator<std::uint64_t>(&heap)};
    v.resize(1000);
    EXPECT_GE(heap.live_bytes(), 8000u);
  }
  EXPECT_EQ(heap.live_bytes(), 0u);
}

TEST(ManagedAllocatorTest, ThrowsOmeOnExhaustion) {
  ManagedHeap heap(FastConfig(4096));
  std::vector<std::uint64_t, ManagedAllocator<std::uint64_t>> v{
      ManagedAllocator<std::uint64_t>(&heap)};
  EXPECT_THROW(v.resize(10'000), OutOfMemoryError);
}

}  // namespace
}  // namespace itask::memsim
