// Pressure-driven partition migration (DESIGN.md §14): the MigrationBroker's
// staleness/headroom/cost decisions, the ctrl-plane headroom helper, the
// MigratePartition ownership-remap protocol (remap-before-send, ambiguous-
// failure abandon, definitive-failure revert), and end-to-end fingerprint
// parity under skewed pressure — with and without killing the migration
// destination mid-flight.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <thread>

#include "apps/hyracks_apps.h"
#include "cluster/failure_model.h"
#include "itask/migration.h"
#include "itask/recovery.h"
#include "itask/runtime.h"
#include "itask/typed_partition.h"
#include "net/ctrl.h"

// ---- MigrationBroker unit tests: staleness, ranking, cost model ----

namespace itask::core {
namespace {

MigrationConfig TestConfig() {
  MigrationConfig config;  // Defaults, independent of ITASK_MIGRATE_* env.
  return config;
}

TEST(MigrationBrokerTest, UnseenAndStaleNodesHaveNoHeadroom) {
  MigrationConfig config = TestConfig();
  config.stale_ms = 40.0;
  MigrationBroker broker(2, config);

  // Never heard from: never trusted.
  EXPECT_EQ(broker.FreeBytes(0), 0u);

  broker.Update(1, /*used=*/0, /*capacity=*/1 << 20);
  EXPECT_EQ(broker.FreeBytes(1),
            static_cast<std::uint64_t>(0.75 * (1 << 20)));

  // Past the cutoff the same stats count as "no headroom" — a wedged node's
  // final beat must not keep attracting migrations.
  std::this_thread::sleep_for(std::chrono::milliseconds(90));
  EXPECT_EQ(broker.FreeBytes(1), 0u);

  // A fresh beat restores trust.
  broker.Update(1, (1 << 20) / 2, 1 << 20);
  EXPECT_EQ(broker.FreeBytes(1),
            static_cast<std::uint64_t>(0.75 * (1 << 20)) - (1 << 20) / 2);
}

TEST(MigrationBrokerTest, ZeroCapacityAndOverfilledNodesHaveNoHeadroom) {
  MigrationBroker broker(2, TestConfig());
  broker.Update(0, 0, 0);  // Heap not sized yet.
  EXPECT_EQ(broker.FreeBytes(0), 0u);
  broker.Update(1, /*used=*/900 << 10, /*capacity=*/1 << 20);  // Over the line.
  EXPECT_EQ(broker.FreeBytes(1), 0u);
}

TEST(MigrationBrokerTest, PickDestinationRanksBySlackAndFiltersPeers) {
  MigrationBroker broker(4, TestConfig());
  auto all_serving = [](int) { return true; };

  // Nobody heard from yet: no destination.
  EXPECT_EQ(broker.PickDestination(0, 1 << 10, all_serving), -1);

  broker.Update(0, 0, 8 << 20);       // Source itself: must never be picked.
  broker.Update(1, 6 << 20, 8 << 20); // Fill line 6 MB: no slack at all.
  broker.Update(2, 1 << 20, 8 << 20); // 5 MB slack.
  broker.Update(3, 2 << 20, 8 << 20); // 4 MB slack.
  EXPECT_EQ(broker.PickDestination(0, 1 << 20, all_serving), 2);

  // The best-ranked peer dropping out of the serving set moves the pick.
  auto node2_down = [](int n) { return n != 2; };
  EXPECT_EQ(broker.PickDestination(0, 1 << 20, node2_down), 3);

  // A payload bigger than every peer's free space has nowhere to go.
  EXPECT_EQ(broker.PickDestination(0, 6 << 20, all_serving), -1);
}

TEST(MigrationBrokerTest, CostModelSpillsSmallAndMigratesLarge) {
  // Defaults: wire = mb/1000 * 1e6 + 200 us; spill = 2 * mb/400 * 1e6 us.
  // Break-even near 50 KB — the RTT dominates small payloads.
  MigrationBroker broker(2, TestConfig());
  EXPECT_FALSE(broker.MigrationCheaper(16 << 10));
  EXPECT_TRUE(broker.MigrationCheaper(1 << 20));

  MigrationConfig fast_wire = TestConfig();
  fast_wire.rtt_us = 0.0;
  MigrationBroker broker2(2, fast_wire);
  EXPECT_TRUE(broker2.MigrationCheaper(16 << 10));  // No fixed cost: wire wins.
}

// ---- Ctrl-plane headroom helper: same stale-means-zero rule ----

TEST(CtrlHeadroomTest, StaleDisconnectedOrUnsizedNodesOfferNothing) {
  net::CtrlNodeInfo info;
  info.connected = true;
  info.heap_capacity = 1 << 20;
  info.heap_used = 1 << 19;
  info.heap_age_ns = 1'000'000;  // 1 ms old.

  const std::uint64_t max_age_ns = 100'000'000;  // 100 ms cutoff.
  EXPECT_EQ(net::CtrlHeapHeadroomBytes(info, max_age_ns),
            (1u << 20) - (1u << 19));
  EXPECT_EQ(net::CtrlHeapHeadroomBytes(info, max_age_ns, /*fill=*/0.75),
            static_cast<std::uint64_t>(0.75 * (1 << 20)) - (1 << 19));

  net::CtrlNodeInfo stale = info;
  stale.heap_age_ns = max_age_ns + 1;
  EXPECT_EQ(net::CtrlHeapHeadroomBytes(stale, max_age_ns), 0u);

  net::CtrlNodeInfo gone = info;
  gone.connected = false;
  EXPECT_EQ(net::CtrlHeapHeadroomBytes(gone, max_age_ns), 0u);

  net::CtrlNodeInfo unsized = info;
  unsized.heap_capacity = 0;
  EXPECT_EQ(net::CtrlHeapHeadroomBytes(unsized, max_age_ns), 0u);

  net::CtrlNodeInfo full = info;
  full.heap_used = full.heap_capacity;
  EXPECT_EQ(net::CtrlHeapHeadroomBytes(full, max_age_ns), 0u);
}

// ---- MigratePartition protocol: remap-before-send, revert vs abandon ----

struct U64Traits {
  using Tuple = std::uint64_t;
  static std::uint64_t SizeOf(const Tuple&) { return 16; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteVarint(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadVarint(); }
};
using U64Partition = VectorPartition<U64Traits>;

memsim::HeapConfig FastHeap() {
  memsim::HeapConfig config;
  config.capacity_bytes = 16 << 20;
  config.real_pauses = false;
  return config;
}

class MigrateProtocolTest : public ::testing::Test {
 protected:
  MigrateProtocolTest()
      : heap0_(FastHeap()),
        heap1_(FastHeap()),
        spill_(std::filesystem::temp_directory_path(), "migration-ledger"),
        rec_(RecoveryConfig{}, 2) {
    type_ = TypeIds::Get("migration.test.u64");
    rec_.RegisterFactory(type_, [this](memsim::ManagedHeap* heap, serde::SpillManager* spill) {
      return std::make_shared<U64Partition>(type_, heap, spill);
    });
    for (int n = 0; n < 2; ++n) {
      RecoveryNodeHooks hooks;
      hooks.heap = n == 0 ? &heap0_ : &heap1_;
      hooks.spill = &spill_;
      hooks.push = [this, n](PartitionPtr dp) { pushed_[n].push_back(std::move(dp)); };
      rec_.SetNodeHooks(n, std::move(hooks));
      rec_.SetNodeSink(n, [this, n](PartitionPtr dp) { sunk_[n].push_back(std::move(dp)); });
    }
  }

  // A registered input split plus a resident copy carrying its lineage stamp
  // (the shape TryMigrate hands to MigratePartition).
  std::shared_ptr<U64Partition> MakeRegisteredSplit(std::int64_t* id_out) {
    auto p = std::make_shared<U64Partition>(type_, &heap0_, &spill_);
    for (std::uint64_t v : {1ull, 2ull, 3ull}) {
      p->Append(v);
    }
    *id_out = rec_.RegisterSplit(*p, /*assigned_node=*/0);
    return p;
  }

  TypeId type_ = 0;
  memsim::ManagedHeap heap0_;
  memsim::ManagedHeap heap1_;
  serde::SpillManager spill_;
  RecoveryContext rec_;
  std::vector<PartitionPtr> pushed_[2];
  std::vector<PartitionPtr> sunk_[2];
};

TEST_F(MigrateProtocolTest, MigrateRemapsOwnershipAndDeliversInproc) {
  std::int64_t id = -1;
  auto dp = MakeRegisteredSplit(&id);

  ASSERT_EQ(rec_.MigratePartition(0, 1, dp),
            RecoveryContext::MigrateOutcome::kMigrated);
  ASSERT_EQ(pushed_[1].size(), 1u);
  EXPECT_EQ(pushed_[1][0]->origin_split(), id);
  EXPECT_EQ(pushed_[1][0]->origin_epoch(), 0u);
  EXPECT_EQ(pushed_[1][0]->TupleCount(), 3u);
  EXPECT_EQ(rec_.stats().partitions_migrated, 1u);
  EXPECT_GT(rec_.stats().migrated_bytes, 0u);

  // Ownership moved with the data: the split commits from the new node and
  // the job completes without the source ever touching it again.
  rec_.CommitEpoch(/*producer=*/1, id, /*epoch=*/0);
  EXPECT_TRUE(rec_.MergeSafe());
}

TEST_F(MigrateProtocolTest, CommittedOrMisassignedSplitsFailValidationFast) {
  std::int64_t id = -1;
  auto dp = MakeRegisteredSplit(&id);

  // Wrong source: the split is assigned to node 0, not node 1.
  EXPECT_EQ(rec_.MigratePartition(1, 0, dp),
            RecoveryContext::MigrateOutcome::kFailed);

  // Already committed: nothing left to move.
  rec_.CommitEpoch(0, id, 0);
  EXPECT_EQ(rec_.MigratePartition(0, 1, dp),
            RecoveryContext::MigrateOutcome::kFailed);
  EXPECT_EQ(rec_.stats().partitions_migrated, 0u);
  EXPECT_TRUE(pushed_[1].empty());
}

TEST_F(MigrateProtocolTest, DefinitiveChannelFailureRevertsOwnership) {
  std::int64_t id = -1;
  auto dp = MakeRegisteredSplit(&id);

  // Every attempt is refused before the frame could land: a verifiably
  // clean failure, so ownership reverts and the caller may spill instead.
  rec_.SetDeliveryChannel(
      [](int, const ShuffleWireId&, const common::ByteBuffer&) {
        return DeliveryStatus::kPeerGone;
      });
  EXPECT_EQ(rec_.MigratePartition(0, 1, dp),
            RecoveryContext::MigrateOutcome::kFailed);
  EXPECT_EQ(rec_.stats().partitions_migrated, 0u);

  // The revert left the ledger coherent: the same split migrates cleanly
  // once the channel heals.
  std::uint64_t seen_seq = 0;
  rec_.SetDeliveryChannel(
      [&seen_seq](int, const ShuffleWireId& wire, const common::ByteBuffer&) {
        seen_seq = wire.seq;
        return DeliveryStatus::kDelivered;
      });
  EXPECT_EQ(rec_.MigratePartition(0, 1, dp),
            RecoveryContext::MigrateOutcome::kMigrated);
  // Migration frames live in their own seq namespace (high bit), so they can
  // never collide with ledger shuffle seqs in the receiver's dedup sets.
  EXPECT_NE(seen_seq & (1ULL << 63), 0u);
  rec_.SetDeliveryChannel(nullptr);
}

TEST_F(MigrateProtocolTest, AmbiguousFailureAbandonsAndReexecutesFromLineage) {
  std::int64_t id = -1;
  auto dp = MakeRegisteredSplit(&id);

  // Acks time out on every attempt: the frame *may* have landed, so handing
  // the split back to the source could double-execute it against a landed
  // stray. The protocol must abandon instead: bump the epoch (fencing the
  // stray) and re-execute from durable bytes.
  rec_.SetDeliveryChannel(
      [](int, const ShuffleWireId&, const common::ByteBuffer&) {
        return DeliveryStatus::kBackoff;
      });
  EXPECT_EQ(rec_.MigratePartition(0, 1, dp),
            RecoveryContext::MigrateOutcome::kAbandoned);
  EXPECT_EQ(rec_.stats().partitions_migrated, 0u);
  rec_.SetDeliveryChannel(nullptr);

  rec_.Sweep();  // Drives the scheduled re-execution.
  ASSERT_EQ(pushed_[1].size(), 1u);  // Re-materialized on the remapped owner.
  EXPECT_EQ(pushed_[1][0]->origin_split(), id);
  EXPECT_EQ(pushed_[1][0]->origin_epoch(), 1u);  // Fenced epoch.
  EXPECT_EQ(pushed_[1][0]->TupleCount(), 3u);    // Full durable payload.
  EXPECT_EQ(rec_.stats().splits_reexecuted, 1u);

  // A zombie commit from the stray copy under the old epoch is fenced.
  rec_.CommitEpoch(1, id, 0);
  EXPECT_EQ(rec_.stats().stale_commits, 1u);
  rec_.CommitEpoch(1, id, 1);
  EXPECT_TRUE(rec_.MergeSafe());
}

TEST_F(MigrateProtocolTest, HeartbeatsFeedBrokerAndMembershipTogether) {
  // The broker must never know about a node the failure detector didn't just
  // hear from: NoteRemoteHeartbeat couples Beat with the stats update.
  rec_.NoteRemoteHeartbeat(1, /*used=*/1 << 20, /*capacity=*/8 << 20);
  EXPECT_GT(rec_.broker().FreeBytes(1), 0u);
  EXPECT_EQ(rec_.broker().FreeBytes(0), 0u);  // Still silent.
}

// ---- SpillStep's three-way decision, driven deterministically ----
//
// The e2e runs below prove migrations happen under real skew, but whether a
// given run migrates depends on worker timing. These tests pin the decision
// itself: a live runtime whose queue holds exactly one eligible victim, a
// broker fed one heartbeat, and a direct SpillStep call — no monitor, no
// workers, no races.

class SpillStepMigrateTest : public ::testing::Test {
 protected:
  SpillStepMigrateTest()
      : heap0_(FastHeap()),
        heap1_(FastHeap()),
        spill_(std::filesystem::temp_directory_path(), "migration-spillstep"),
        rec_(RecoveryConfig{}, 2) {
    type_ = TypeIds::Get("migration.spillstep.u64");
    rec_.RegisterFactory(type_, [this](memsim::ManagedHeap* heap, serde::SpillManager* spill) {
      return std::make_shared<U64Partition>(type_, heap, spill);
    });
    for (int n = 0; n < 2; ++n) {
      RecoveryNodeHooks hooks;
      hooks.heap = n == 0 ? &heap0_ : &heap1_;
      hooks.spill = &spill_;
      hooks.push = [this, n](PartitionPtr dp) { pushed_[n].push_back(std::move(dp)); };
      rec_.SetNodeHooks(n, std::move(hooks));
    }

    NodeServices services{/*node_id=*/0, "spillstep-n0", &heap0_, &spill_,
                          /*tracer=*/nullptr, /*async_spill=*/nullptr};
    IrsConfig irs;
    irs.max_workers = 1;
    rt_ = std::make_unique<IrsRuntime>(services, irs, std::make_shared<JobState>());
    TaskSpec spec;  // Non-merge consumer: keeps the victim migration-eligible.
    spec.name = "consume";
    spec.input_type = type_;
    spec.output_type = TypeIds::Get("migration.spillstep.out");
    rt_->graph().Register(spec);
    rt_->FinalizeGraph();
    rt_->EnableFaultTolerance(&rec_);
  }

  // A registered (lineage-stamped) resident split sitting unpinned in the
  // runtime's queue — the exact shape SpillStep sees under pressure. 8192
  // tuples x 16 B = 128 KB: above the default size floor and cost-model
  // break-even, so only broker state decides the arm taken.
  std::shared_ptr<U64Partition> QueueEligibleVictim() {
    auto p = std::make_shared<U64Partition>(type_, &heap0_, &spill_);
    for (std::uint64_t i = 0; i < 8192; ++i) {
      p->Append(i);
    }
    rec_.RegisterSplit(*p, /*assigned_node=*/0);
    // Straight into the queue: IrsRuntime::Push would dispatch the partition
    // into an idle worker slot (no worker threads run in this fixture), and a
    // dispatched victim is exactly what SpillStep must never touch.
    rt_->queue().Push(p);
    return p;
  }

  TypeId type_ = 0;
  memsim::ManagedHeap heap0_;
  memsim::ManagedHeap heap1_;
  serde::SpillManager spill_;
  RecoveryContext rec_;
  std::vector<PartitionPtr> pushed_[2];
  std::unique_ptr<IrsRuntime> rt_;
};

TEST_F(SpillStepMigrateTest, TakesMigrateArmWhenPeerHasHeadroom) {
  auto dp = QueueEligibleVictim();
  const std::uint64_t bytes = dp->PayloadBytes();
  rec_.NoteRemoteHeartbeat(1, /*used=*/0, /*capacity=*/16 << 20);

  EXPECT_EQ(rt_->partition_manager().SpillStep(/*bytes_goal=*/1), bytes);

  // The victim moved instead of spilling: peer owns the bytes, local copy is
  // purged, and nothing was written to disk.
  EXPECT_EQ(rec_.stats().partitions_migrated, 1u);
  EXPECT_EQ(rec_.stats().migrated_bytes, bytes);
  EXPECT_EQ(rec_.stats().migrations_rejected, 0u);
  ASSERT_EQ(pushed_[1].size(), 1u);
  EXPECT_EQ(pushed_[1][0]->TupleCount(), 8192u);
  EXPECT_EQ(pushed_[1][0]->origin_split(), dp->origin_split());
  EXPECT_EQ(dp->PayloadBytes(), 0u);  // Purged: the local charge is released.
  EXPECT_EQ(heap0_.live_bytes(), 0u);
  EXPECT_EQ(heap1_.live_bytes(), bytes);
  EXPECT_TRUE(rt_->queue().ResidentSnapshot().empty());
}

TEST_F(SpillStepMigrateTest, FallsBackToSpillWithoutDestination) {
  auto dp = QueueEligibleVictim();
  const std::uint64_t bytes = dp->PayloadBytes();
  // No heartbeat: the broker never heard from the peer, so the cost model's
  // approval finds no destination and the decision falls back to local disk.

  EXPECT_EQ(rt_->partition_manager().SpillStep(/*bytes_goal=*/1), bytes);

  EXPECT_EQ(rec_.stats().partitions_migrated, 0u);
  // Two rejections, one spill: a fresh partition sits inside the thrash
  // cooldown window, so the cooldown branch tries the wire first, and the
  // all-candidates-recent fallback tries once more before spilling.
  EXPECT_EQ(rec_.stats().migrations_rejected, 2u);
  EXPECT_TRUE(pushed_[1].empty());
  EXPECT_FALSE(dp->resident());  // Spilled, not purged: reloadable locally.
  dp->EnsureResident();
  EXPECT_EQ(dp->TupleCount(), 8192u);
}

TEST_F(SpillStepMigrateTest, RecentlyLoadedVictimsStillMigrate) {
  auto dp = QueueEligibleVictim();
  const std::uint64_t bytes = dp->PayloadBytes();
  // Stamp a just-now load time: inside the thrash cooldown window, where
  // spilling is deferred (the imminent reload would ping-pong the disk) but
  // migration must remain available — the wire has no reload to thrash.
  dp->Spill();
  dp->EnsureResident();
  rec_.NoteRemoteHeartbeat(1, /*used=*/0, /*capacity=*/16 << 20);

  EXPECT_EQ(rt_->partition_manager().SpillStep(/*bytes_goal=*/1), bytes);
  EXPECT_EQ(rec_.stats().partitions_migrated, 1u);
  ASSERT_EQ(pushed_[1].size(), 1u);
  EXPECT_EQ(pushed_[1][0]->TupleCount(), 8192u);
}

}  // namespace
}  // namespace itask::core

// ---- End-to-end: skewed pressure, fingerprint parity, destination kill ----

namespace itask::apps {
namespace {

cluster::Cluster MakeSkewedCluster(std::uint64_t node0_heap, std::uint64_t peer_heap,
                                   int nodes = 2) {
  cluster::ClusterConfig cc;
  cc.num_nodes = nodes;
  cc.heap.capacity_bytes = node0_heap;
  cc.heap.real_pauses = false;
  cc.per_node_heap_bytes.assign(static_cast<std::size_t>(nodes), peer_heap);
  cc.per_node_heap_bytes[0] = node0_heap;
  return cluster::Cluster(cc);
}

AppConfig SkewConfig() {
  AppConfig config;
  config.dataset_bytes = 768 << 10;
  config.tpch_scale = 0.2;
  config.threads = 4;
  config.max_workers = 4;
  config.granularity_bytes = 64 << 10;  // Above the migration size floor.
  config.fault_tolerance = true;
  return config;
}

// Fast failure detection plus migration knobs that favor the wire (the
// modeled spill device is slow and the RTT small, so any eligible pressured
// partition prefers a peer with headroom over the local disk).
class MigrationE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("ITASK_HEARTBEAT_MS", "1", 1);
    setenv("ITASK_SUSPECT_TIMEOUT_MS", "25", 1);
    setenv("ITASK_MIGRATE_MIN_BYTES", "1024", 1);
    setenv("ITASK_MIGRATE_RTT_US", "10", 1);
    setenv("ITASK_MIGRATE_DISK_MBPS", "50", 1);
  }
  void TearDown() override {
    unsetenv("ITASK_HEARTBEAT_MS");
    unsetenv("ITASK_SUSPECT_TIMEOUT_MS");
    unsetenv("ITASK_MIGRATE_MIN_BYTES");
    unsetenv("ITASK_MIGRATE_RTT_US");
    unsetenv("ITASK_MIGRATE_DISK_MBPS");
  }
};

AppResult RunReference(const char* app, int nodes = 2) {
  // Same topology, no skew, no faults.
  auto cluster = MakeSkewedCluster(48 << 20, 48 << 20, nodes);
  return RunHyracksApp(app, cluster, SkewConfig(), Mode::kITask);
}

// One node at a fraction of its peers' heap: the pressured node must complete
// with a bit-for-bit fingerprint on every run. Whether a given run also takes
// the migrate arm depends on worker/monitor interleaving — an input-split
// remainder has to be sitting in the queue at interrupt time — so the counter
// is diagnostic-only here; the decision logic is pinned deterministically by
// SpillStepMigrateTest above, and "a skewed run actually migrates" is gated
// in CI (ci.sh tier 4e chaos smoke, tier 5d bench_migration).
TEST_F(MigrationE2eTest, SkewedPressurePreservesFingerprintAndMigrates) {
  std::uint64_t total_migrated = 0;
  std::uint64_t total_rejected = 0;
  std::uint64_t total_interrupts = 0;
  for (const char* app : {"WC", "HS"}) {
    const AppResult reference = RunReference(app);
    ASSERT_TRUE(reference.metrics.succeeded) << app;
    ASSERT_GT(reference.records, 0u) << app;

    // Every app gets one skewed parity round; extra rounds only run while the
    // aggregate migration counter is still hunting its first hit.
    for (int round = 0; round < 10 && (round == 0 || total_migrated == 0); ++round) {
      auto cluster = MakeSkewedCluster(/*node0_heap=*/448 << 10,
                                       /*peer_heap=*/8 << 20);
      const AppResult skewed =
          RunHyracksApp(app, cluster, SkewConfig(), Mode::kITask);
      ASSERT_TRUE(skewed.metrics.succeeded)
          << app << " round " << round << ": " << skewed.metrics.Summary();
      EXPECT_EQ(skewed.checksum, reference.checksum) << app << " round " << round;
      EXPECT_EQ(skewed.records, reference.records) << app << " round " << round;
      EXPECT_EQ(skewed.metrics.duplicate_tuples_dropped, 0u)
          << app << " round " << round;
      total_migrated += skewed.metrics.partitions_migrated;
      total_rejected += skewed.metrics.migrations_rejected;
      total_interrupts += skewed.metrics.interrupts + skewed.metrics.ome_interrupts;
    }
  }
  if (total_migrated == 0) {
    // ~1-in-15 processes never queue an eligible remainder at interrupt time
    // even across 10 rounds (rejected stays 0: the silent eligibility gates
    // filter every victim). Parity above is the hard assertion; migration
    // liveness is enforced deterministically and in CI instead.
    std::cerr << "note: no round took the migrate arm (rejected="
              << total_rejected << " interrupts=" << total_interrupts
              << "); covered by SpillStepMigrateTest + ci.sh tiers 4e/5d\n";
  }
}

// Killing the migration destination mid-flight must not lose or duplicate
// data: remap-before-send means OnNodeLost(target) re-executes every split
// the dead peer owned — including any migrated to it moments earlier — from
// durable bytes.
TEST_F(MigrationE2eTest, KillingMigrationDestinationPreservesFingerprint) {
  const AppResult reference = RunReference("WC", /*nodes=*/3);
  ASSERT_TRUE(reference.metrics.succeeded);

  // Three nodes: node 0 pressured, nodes 1-2 are destinations; node 1 dies
  // shortly into the run, while migrations toward it may be in flight.
  cluster::FailureModel model;
  model.ScheduleKill(1, 2.0);
  auto cluster = MakeSkewedCluster(/*node0_heap=*/448 << 10,
                                   /*peer_heap=*/8 << 20, /*nodes=*/3);
  AppConfig config = SkewConfig();
  config.failure_model = &model;
  const AppResult faulted = RunHyracksApp("WC", cluster, config, Mode::kITask);
  ASSERT_TRUE(faulted.metrics.succeeded) << faulted.metrics.Summary();
  EXPECT_EQ(faulted.checksum, reference.checksum);
  EXPECT_EQ(faulted.records, reference.records);
  EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u);
  EXPECT_GE(faulted.metrics.nodes_failed, 1u);
}

}  // namespace
}  // namespace itask::apps
