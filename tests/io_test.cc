#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/byte_buffer.h"
#include "common/rng.h"
#include "io/async_spill_manager.h"
#include "io/frame_codec.h"
#include "io/io_executor.h"
#include "serde/spill_manager.h"

namespace itask::io {
namespace {

common::ByteBuffer RandomBuffer(common::Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.NextBelow(256));
  }
  return common::ByteBuffer(std::move(data));
}

// Serialized partitions mix runs (zero padding, repeated prefixes) with
// incompressible content; this generator produces both.
common::ByteBuffer RunnyBuffer(common::Rng& rng, std::size_t target) {
  std::vector<std::uint8_t> data;
  data.reserve(target);
  while (data.size() < target) {
    if (rng.NextBelow(2) == 0) {
      const std::size_t len = 1 + rng.NextBelow(64);
      const auto byte = static_cast<std::uint8_t>(rng.NextBelow(256));
      data.insert(data.end(), len, byte);
    } else {
      const std::size_t len = 1 + rng.NextBelow(32);
      for (std::size_t i = 0; i < len; ++i) {
        data.push_back(static_cast<std::uint8_t>(rng.NextBelow(256)));
      }
    }
  }
  data.resize(target);
  return common::ByteBuffer(std::move(data));
}

// ---------------------------------------------------------------------------
// FrameCodec

TEST(FrameCodecTest, RoundTripIncompressible) {
  common::Rng rng(42);
  const common::ByteBuffer raw = RandomBuffer(rng, 4096);
  common::ByteBuffer framed;
  const FrameInfo enc = FrameCodec::Encode(raw, &framed);
  EXPECT_EQ(enc.raw_bytes, raw.size());
  EXPECT_EQ(enc.framed_bytes, framed.size());
  // Random bytes never compress: verbatim frame, bounded header overhead.
  EXPECT_FALSE(enc.compressed);
  EXPECT_LE(framed.size(), raw.size() + 32);

  common::ByteBuffer out;
  const FrameInfo dec = FrameCodec::Decode(framed, &out);
  EXPECT_EQ(dec.raw_bytes, raw.size());
  EXPECT_EQ(out.bytes(), raw.bytes());
}

TEST(FrameCodecTest, RoundTripCompressible) {
  std::vector<std::uint8_t> data(8192, 0);
  for (std::size_t i = 0; i < data.size(); i += 97) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const common::ByteBuffer raw(std::move(data));
  common::ByteBuffer framed;
  const FrameInfo enc = FrameCodec::Encode(raw, &framed);
  EXPECT_TRUE(enc.compressed);
  EXPECT_LT(framed.size(), raw.size() / 2);

  common::ByteBuffer out;
  FrameCodec::Decode(framed, &out);
  EXPECT_EQ(out.bytes(), raw.bytes());
}

TEST(FrameCodecTest, RoundTripEmpty) {
  common::ByteBuffer raw;
  common::ByteBuffer framed;
  const FrameInfo enc = FrameCodec::Encode(raw, &framed);
  EXPECT_EQ(enc.raw_bytes, 0u);
  common::ByteBuffer out;
  FrameCodec::Decode(framed, &out);
  EXPECT_TRUE(out.bytes().empty());
}

TEST(FrameCodecTest, CompressionDisabledStoresVerbatim) {
  const common::ByteBuffer raw(std::vector<std::uint8_t>(4096, 0xAA));
  common::ByteBuffer framed;
  const FrameInfo enc = FrameCodec::Encode(raw, &framed, /*compression=*/false);
  EXPECT_FALSE(enc.compressed);
  EXPECT_GE(framed.size(), raw.size());
  common::ByteBuffer out;
  FrameCodec::Decode(framed, &out);
  EXPECT_EQ(out.bytes(), raw.bytes());
}

TEST(FrameCodecTest, DetectsCorruption) {
  common::Rng rng(7);
  const common::ByteBuffer raw = RunnyBuffer(rng, 2048);
  common::ByteBuffer framed;
  FrameCodec::Encode(raw, &framed);

  // Bad magic.
  {
    common::ByteBuffer bad = framed;
    bad.bytes()[0] ^= 0xFF;
    common::ByteBuffer out;
    EXPECT_THROW(FrameCodec::Decode(bad, &out), std::runtime_error);
  }
  // Flipped payload byte fails the checksum.
  {
    common::ByteBuffer bad = framed;
    bad.bytes().back() ^= 0x01;
    common::ByteBuffer out;
    EXPECT_THROW(FrameCodec::Decode(bad, &out), std::runtime_error);
  }
  // Truncation.
  {
    common::ByteBuffer bad = framed;
    bad.bytes().resize(bad.size() / 2);
    common::ByteBuffer out;
    EXPECT_THROW(FrameCodec::Decode(bad, &out), std::runtime_error);
  }
  // Empty input.
  {
    common::ByteBuffer out;
    EXPECT_THROW(FrameCodec::Decode(common::ByteBuffer(), &out), std::runtime_error);
  }
}

TEST(FrameCodecTest, RandomizedRoundTripProperty) {
  common::Rng rng(20260806);
  for (int i = 0; i < 200; ++i) {
    const std::size_t size = rng.NextBelow(4096);
    const common::ByteBuffer raw =
        (i % 2 == 0) ? RunnyBuffer(rng, size) : RandomBuffer(rng, size);
    const bool compression = rng.NextBelow(2) == 0;
    common::ByteBuffer framed;
    const FrameInfo enc = FrameCodec::Encode(raw, &framed, compression);
    ASSERT_EQ(enc.raw_bytes, raw.size());
    common::ByteBuffer out;
    const FrameInfo dec = FrameCodec::Decode(framed, &out);
    ASSERT_EQ(dec.raw_bytes, raw.size());
    ASSERT_EQ(dec.compressed, enc.compressed);
    ASSERT_EQ(out.bytes(), raw.bytes());
  }
}

// ---------------------------------------------------------------------------
// IoExecutor

TEST(IoExecutorTest, PoolZeroRunsInline) {
  IoExecutor exec(0);
  EXPECT_FALSE(exec.async());
  bool ran = false;
  exec.Submit(IoClass::kWrite, 0, [&] { ran = true; });
  EXPECT_TRUE(ran);  // Inline: done before Submit returns.
  const IoExecutorStats stats = exec.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.executed, 1u);
}

TEST(IoExecutorTest, DrainsLoadsBeforeWritesThenByPriority) {
  IoExecutor exec(1);
  ASSERT_TRUE(exec.async());

  // Occupy the single worker so the queue builds up in a known state.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  exec.Submit(IoClass::kLoad, -1000, [opened] { opened.wait(); });

  std::mutex mu;
  std::vector<int> order;
  const auto record = [&](int tag) {
    return [&mu, &order, tag] {
      std::lock_guard lock(mu);
      order.push_back(tag);
    };
  };
  // Submitted deliberately out of drain order.
  exec.Submit(IoClass::kWrite, 5, record(3));  // Write, far from finish line.
  exec.Submit(IoClass::kWrite, 0, record(2));  // Write, near finish line.
  exec.Submit(IoClass::kLoad, 7, record(1));   // Loads beat every write.
  exec.Submit(IoClass::kWrite, 5, record(4));  // FIFO within equal (class, prio).

  gate.set_value();
  exec.Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(IoExecutorTest, TryCancelRemovesQueuedJobOnly) {
  IoExecutor exec(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  const IoExecutor::JobId running =
      exec.Submit(IoClass::kLoad, 0, [opened] { opened.wait(); });

  std::atomic<bool> ran{false};
  // Give the worker a beat to dequeue the gate job so |running| is inflight.
  while (exec.queue_depth() != 0) {
    std::this_thread::yield();
  }
  const IoExecutor::JobId queued =
      exec.Submit(IoClass::kWrite, 0, [&ran] { ran = true; });

  EXPECT_TRUE(exec.TryCancel(queued));
  EXPECT_FALSE(exec.TryCancel(queued));   // Already gone.
  EXPECT_FALSE(exec.TryCancel(running));  // Already started.
  EXPECT_FALSE(exec.TryCancel(999999));   // Never existed.

  gate.set_value();
  exec.Drain();
  EXPECT_FALSE(ran.load());
  const IoExecutorStats stats = exec.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.executed, 1u);
}

// ---------------------------------------------------------------------------
// AsyncSpillManager

class AsyncSpillTest : public ::testing::Test {
 protected:
  AsyncSpillTest()
      : exec_(2),
        mgr_(std::filesystem::temp_directory_path(), "io-test", &exec_) {}

  IoExecutor exec_;
  AsyncSpillManager mgr_;
};

TEST_F(AsyncSpillTest, SpillLoadRoundTrip) {
  common::Rng rng(1);
  const common::ByteBuffer payload = RunnyBuffer(rng, 64 << 10);
  const auto id = mgr_.Spill(payload);
  mgr_.Drain();
  const common::ByteBuffer loaded = mgr_.LoadAndRemove(id);
  EXPECT_EQ(loaded.bytes(), payload.bytes());
  // Stats report raw payload units, codec-agnostic.
  const serde::SpillStats stats = mgr_.Stats();
  EXPECT_EQ(stats.spilled_bytes, payload.size());
  EXPECT_EQ(stats.loaded_bytes, payload.size());
  EXPECT_EQ(stats.live_files, 0u);
  EXPECT_EQ(stats.live_file_bytes, 0u);
}

TEST_F(AsyncSpillTest, LoadUnknownIdThrows) {
  EXPECT_THROW(mgr_.LoadAndRemove(12345), std::runtime_error);
}

TEST_F(AsyncSpillTest, LoadAsyncDeliversPayload) {
  common::Rng rng(2);
  const common::ByteBuffer payload = RandomBuffer(rng, 8 << 10);
  const auto id = mgr_.Spill(payload);
  std::future<common::ByteBuffer> f = mgr_.LoadAsync(id);
  EXPECT_EQ(f.get().bytes(), payload.bytes());
}

TEST(AsyncSpillCancelTest, ImmediateLoadCancelsQueuedWrite) {
  IoExecutor exec(1);
  AsyncSpillManager mgr(std::filesystem::temp_directory_path(), "io-cancel", &exec);

  // Jam the single worker so the spill's write stays queued (cancellable).
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  exec.Submit(IoClass::kLoad, -1000, [opened] { opened.wait(); });

  common::Rng rng(3);
  const common::ByteBuffer payload = RunnyBuffer(rng, 16 << 10);
  const auto id = mgr.Spill(payload);
  const common::ByteBuffer loaded = mgr.LoadAndRemove(id);
  gate.set_value();
  mgr.Drain();

  EXPECT_EQ(loaded.bytes(), payload.bytes());
  const IoStats io = mgr.io_stats();
  EXPECT_EQ(io.cancelled_writes, 1u);
  EXPECT_EQ(io.cancelled_write_bytes, payload.size());
  EXPECT_EQ(io.loads_from_cache, 1u);
  // The disk was never touched: nothing framed, no base write.
  EXPECT_EQ(io.raw_bytes, 0u);
  EXPECT_EQ(mgr.serde::SpillManager::Stats().spill_count, 0u);
}

TEST(AsyncSpillFailureTest, FailedWriteSurfacesOnceThenServesFromCache) {
  IoExecutor exec(1);
  AsyncSpillManager mgr(std::filesystem::temp_directory_path(), "io-fail", &exec);
  serde::SpillFailureInjection inject;
  inject.write_probability = 1.0;
  mgr.SetFailureInjection(inject);

  common::Rng rng(4);
  const common::ByteBuffer payload = RunnyBuffer(rng, 4 << 10);
  const auto id = mgr.Spill(payload);
  mgr.Drain();

  EXPECT_EQ(mgr.io_stats().write_failures, 1u);
  // The failure surfaces exactly once, then the cached payload is served —
  // the data is never lost.
  EXPECT_THROW(mgr.LoadAndRemove(id), std::runtime_error);
  const common::ByteBuffer loaded = mgr.LoadAndRemove(id);
  EXPECT_EQ(loaded.bytes(), payload.bytes());
  // No double-counting: one spill accepted, one load served.
  const serde::SpillStats stats = mgr.Stats();
  EXPECT_EQ(stats.spill_count, 1u);
  EXPECT_EQ(stats.load_count, 1u);
  EXPECT_EQ(stats.live_files, 0u);
}

TEST(AsyncSpillFailureTest, InjectedReadFailureIsRetryable) {
  IoExecutor exec(1);
  AsyncSpillManager mgr(std::filesystem::temp_directory_path(), "io-readfail", &exec);

  common::Rng rng(5);
  const common::ByteBuffer payload = RunnyBuffer(rng, 4 << 10);
  const auto id = mgr.Spill(payload);
  mgr.Drain();  // Durable before the read injection arms.

  serde::SpillFailureInjection inject;
  inject.read_probability = 1.0;
  mgr.SetFailureInjection(inject);
  EXPECT_THROW(mgr.LoadAndRemove(id), std::runtime_error);

  mgr.SetFailureInjection(serde::SpillFailureInjection{});
  const common::ByteBuffer loaded = mgr.LoadAndRemove(id);
  EXPECT_EQ(loaded.bytes(), payload.bytes());
  EXPECT_GE(mgr.Stats().injected_failures, 1u);
}

TEST(AsyncSpillRemoveTest, RemoveCancelsQueuedAndDropsDurable) {
  IoExecutor exec(1);
  AsyncSpillManager mgr(std::filesystem::temp_directory_path(), "io-remove", &exec);

  // Queued entry: Remove cancels the pending write, disk untouched.
  {
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    exec.Submit(IoClass::kLoad, -1000, [opened] { opened.wait(); });
    const auto id = mgr.Spill(common::ByteBuffer(std::vector<std::uint8_t>(1024, 1)));
    mgr.Remove(id);
    gate.set_value();
    mgr.Drain();
    EXPECT_EQ(mgr.serde::SpillManager::Stats().spill_count, 0u);
    EXPECT_THROW(mgr.LoadAndRemove(id), std::runtime_error);
  }
  // Durable entry: Remove deletes the base file.
  {
    const auto id = mgr.Spill(common::ByteBuffer(std::vector<std::uint8_t>(1024, 2)));
    mgr.Drain();
    mgr.Remove(id);
    EXPECT_EQ(mgr.Stats().live_files, 0u);
    EXPECT_THROW(mgr.LoadAndRemove(id), std::runtime_error);
  }
}

// Property: across random interleavings of spill / immediate load (cancelled
// write) / drained load (disk round-trip) / injected write failures, the async
// engine returns exactly the payload a synchronous SpillManager would — the
// async path is semantics-preserving.
TEST(AsyncSpillPropertyTest, AsyncMatchesSyncAcrossInterleavings) {
  common::Rng rng(98765);
  for (int round = 0; round < 8; ++round) {
    IoExecutor exec(2);
    AsyncSpillManager async_mgr(std::filesystem::temp_directory_path(), "io-prop-async",
                                &exec);
    serde::SpillManager sync_mgr(std::filesystem::temp_directory_path(), "io-prop-sync");
    if (round >= 4) {
      serde::SpillFailureInjection inject;
      inject.every_nth = 3;
      inject.seed = 1000u + static_cast<std::uint64_t>(round);
      async_mgr.SetFailureInjection(inject);
    }

    struct Live {
      std::uint64_t async_id;
      std::uint64_t sync_id;
      std::vector<std::uint8_t> payload;
    };
    // A load may surface injected failures (each surfaces as an error, the
    // data is never lost); keep retrying — the shared nth-op counter also
    // advances under concurrent background writes.
    const auto load_with_retries = [&async_mgr](std::uint64_t id) {
      for (int attempt = 0;; ++attempt) {
        try {
          return async_mgr.LoadAndRemove(id);
        } catch (const std::runtime_error&) {
          if (attempt >= 8) {
            throw;
          }
        }
      }
    };
    std::vector<Live> live;
    const int ops = 40;
    for (int op = 0; op < ops; ++op) {
      const std::uint64_t kind = rng.NextBelow(4);
      if (kind <= 1 || live.empty()) {
        const common::ByteBuffer payload = RunnyBuffer(rng, 512 + rng.NextBelow(8192));
        const auto async_id = async_mgr.Spill(payload);
        // The sync reference never has injection armed; it defines expected
        // payloads, not expected failures.
        const auto sync_id = sync_mgr.Spill(payload);
        live.push_back({async_id, sync_id, payload.bytes()});
        if (rng.NextBelow(2) == 0) {
          async_mgr.Drain();  // Force the disk path for some entries.
        }
      } else {
        const std::size_t pick = rng.NextBelow(live.size());
        Live entry = live[static_cast<std::size_t>(pick)];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        const common::ByteBuffer from_async = load_with_retries(entry.async_id);
        const common::ByteBuffer from_sync = sync_mgr.LoadAndRemove(entry.sync_id);
        ASSERT_EQ(from_async.bytes(), entry.payload);
        ASSERT_EQ(from_sync.bytes(), entry.payload);
      }
    }
    // Drain the rest through both managers.
    for (const Live& entry : live) {
      ASSERT_EQ(load_with_retries(entry.async_id).bytes(), entry.payload);
      ASSERT_EQ(sync_mgr.LoadAndRemove(entry.sync_id).bytes(), entry.payload);
    }
    EXPECT_EQ(async_mgr.Stats().live_files, 0u);
  }
}

// Stress: concurrent spill/load/remove from several threads against one
// manager. Every loaded payload must match its original; nothing leaks.
TEST(AsyncSpillStressTest, ConcurrentSpillLoadRemove) {
  IoExecutor exec(2);
  AsyncSpillManager mgr(std::filesystem::temp_directory_path(), "io-stress", &exec);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mgr, &mismatches, t] {
      common::Rng rng(7000u + static_cast<std::uint64_t>(t));
      struct Owned {
        std::uint64_t id;
        std::vector<std::uint8_t> payload;
      };
      std::vector<Owned> owned;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::uint64_t kind = rng.NextBelow(5);
        if (kind <= 2 || owned.empty()) {
          const common::ByteBuffer payload = RunnyBuffer(rng, 256 + rng.NextBelow(4096));
          owned.push_back({mgr.Spill(payload), payload.bytes()});
        } else if (kind == 3) {
          const std::size_t pick = rng.NextBelow(owned.size());
          const Owned entry = owned[static_cast<std::size_t>(pick)];
          owned.erase(owned.begin() + static_cast<std::ptrdiff_t>(pick));
          if (mgr.LoadAndRemove(entry.id).bytes() != entry.payload) {
            ++mismatches;
          }
        } else {
          const std::size_t pick = rng.NextBelow(owned.size());
          mgr.Remove(owned[static_cast<std::size_t>(pick)].id);
          owned.erase(owned.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      }
      for (const Owned& entry : owned) {
        if (mgr.LoadAndRemove(entry.id).bytes() != entry.payload) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  mgr.Drain();
  const serde::SpillStats stats = mgr.Stats();
  EXPECT_EQ(stats.live_files, 0u);
  EXPECT_EQ(stats.live_file_bytes, 0u);
}

}  // namespace
}  // namespace itask::io
