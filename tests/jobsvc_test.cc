// Job-service tests: budget-ledger and admission-control units, elasticity
// knee derivation, per-job heap accounting and cross-tenant pressure ranks,
// concurrent WC+HS+HJ tenants reproducing their solo fingerprints, and the
// chaos isolation property (tenant A's OOM storm leaves tenant B's result
// fingerprint unchanged).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/hyracks_apps.h"
#include "chaos/chaos.h"
#include "cluster/cluster.h"
#include "jobsvc/admission.h"
#include "jobsvc/budget.h"
#include "jobsvc/elasticity.h"
#include "jobsvc/job_service.h"
#include "memsim/managed_heap.h"

namespace itask::jobsvc {
namespace {

// ---------------------------------------------------------------- BudgetLedger

TEST(BudgetLedgerTest, AdmissibleWindowNetsOutHeadroom) {
  BudgetLedger ledger(BudgetConfig{/*capacity=*/1000, /*headroom=*/0.2, /*overcommit=*/1.0});
  EXPECT_EQ(ledger.admissible_bytes(), 800u);
  EXPECT_EQ(ledger.available_bytes(), 800u);
  EXPECT_EQ(ledger.committed_bytes(), 0u);
}

TEST(BudgetLedgerTest, OvercommitScalesTheWindow) {
  BudgetLedger ledger(BudgetConfig{1000, 0.0, 1.5});
  EXPECT_EQ(ledger.admissible_bytes(), 1500u);
}

TEST(BudgetLedgerTest, ReserveAndReleaseRoundTrip) {
  BudgetLedger ledger(BudgetConfig{1000, 0.0, 1.0});
  EXPECT_TRUE(ledger.TryReserve(600));
  EXPECT_EQ(ledger.available_bytes(), 400u);
  EXPECT_FALSE(ledger.TryReserve(500));  // Does not fit; no change.
  EXPECT_EQ(ledger.committed_bytes(), 600u);
  EXPECT_TRUE(ledger.TryReserve(400));
  EXPECT_EQ(ledger.available_bytes(), 0u);
  ledger.Release(600);
  EXPECT_EQ(ledger.available_bytes(), 600u);
  // Releasing more than committed clamps instead of wrapping.
  ledger.Release(10'000);
  EXPECT_EQ(ledger.committed_bytes(), 0u);
}

TEST(BudgetLedgerTest, ZeroReservationIsRejected) {
  BudgetLedger ledger(BudgetConfig{1000, 0.0, 1.0});
  EXPECT_FALSE(ledger.TryReserve(0));
}

// --------------------------------------------------------- AdmissionController

JobRequest Req(std::uint64_t ticket, int priority, std::uint64_t budget) {
  return {ticket, "job" + std::to_string(ticket), priority, budget};
}

TEST(AdmissionTest, PriorityOrderFifoWithinPriority) {
  AdmissionController adm(BudgetConfig{1000, 0.0, 1.0}, /*max_concurrent=*/4);
  adm.Enqueue(Req(1, 0, 100));
  adm.Enqueue(Req(2, 5, 100));
  adm.Enqueue(Req(3, 5, 100));
  adm.Enqueue(Req(4, 1, 100));
  const auto admitted = adm.AdmitRunnable(/*running=*/0);
  ASSERT_EQ(admitted.size(), 4u);
  EXPECT_EQ(admitted[0].ticket, 2u);  // Highest priority first.
  EXPECT_EQ(admitted[1].ticket, 3u);  // FIFO within priority 5.
  EXPECT_EQ(admitted[2].ticket, 4u);
  EXPECT_EQ(admitted[3].ticket, 1u);
}

TEST(AdmissionTest, ConcurrencySlotsCapAdmission) {
  AdmissionController adm(BudgetConfig{1000, 0.0, 1.0}, /*max_concurrent=*/2);
  adm.Enqueue(Req(1, 0, 100));
  adm.Enqueue(Req(2, 0, 100));
  adm.Enqueue(Req(3, 0, 100));
  EXPECT_EQ(adm.AdmitRunnable(0).size(), 2u);
  EXPECT_EQ(adm.queued(), 1u);
  EXPECT_EQ(adm.AdmitRunnable(2).size(), 0u);  // House full.
  adm.OnJobFinished(100);
  EXPECT_EQ(adm.AdmitRunnable(1).size(), 1u);
}

TEST(AdmissionTest, HeadOfLineBypassWithDeferralReport) {
  AdmissionController adm(BudgetConfig{1000, 0.0, 1.0}, /*max_concurrent=*/4);
  adm.Enqueue(Req(1, 9, 800));  // Admitted, takes most of the window.
  adm.Enqueue(Req(2, 9, 800));  // Deferred: only 200 left.
  adm.Enqueue(Req(3, 0, 150));  // Bypasses: fits the remainder.
  std::vector<Deferral> deferred;
  const auto admitted = adm.AdmitRunnable(0, &deferred);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].ticket, 1u);
  EXPECT_EQ(admitted[1].ticket, 3u);
  ASSERT_EQ(deferred.size(), 1u);
  EXPECT_EQ(deferred[0].ticket, 2u);
  EXPECT_EQ(deferred[0].shortfall_bytes, 600u);  // Wanted 800, 200 available.
  // The deferred job is admitted once capacity frees up.
  adm.OnJobFinished(800);
  const auto later = adm.AdmitRunnable(1);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].ticket, 2u);
}

// ------------------------------------------------------------------ Elasticity

TEST(ElasticityTest, KneeIsSmallestHeapWithinTolerance) {
  // Classic spill curve: flat at large heaps, climbing below the working set.
  std::vector<ElasticityPoint> points = {
      {1 << 20, 900.0, true},   // 3x best: below the knee.
      {2 << 20, 400.0, true},   // 1.33x best: within 1.4 tolerance -> knee.
      {4 << 20, 310.0, true},
      {8 << 20, 300.0, true},
  };
  const ElasticityProfile profile = ElasticityProfiler::FromPoints(points, 1.4);
  EXPECT_EQ(profile.best_runtime_ms, 300.0);
  EXPECT_EQ(profile.knee_bytes, static_cast<std::uint64_t>(2 << 20));
  EXPECT_EQ(profile.knee_runtime_ms, 400.0);
  // The recommendation pads the knee.
  EXPECT_EQ(profile.RecommendedBudget(1.25),
            static_cast<std::uint64_t>((2 << 20) * 1.25));
}

TEST(ElasticityTest, FailedPointsAreExcluded) {
  std::vector<ElasticityPoint> points = {
      {1 << 20, 0.0, false},  // OMEd at this size.
      {4 << 20, 500.0, true},
  };
  const ElasticityProfile profile = ElasticityProfiler::FromPoints(points, 1.3);
  EXPECT_EQ(profile.knee_bytes, static_cast<std::uint64_t>(4 << 20));
}

TEST(ElasticityTest, AllFailedMeansNoKnee) {
  const ElasticityProfile profile =
      ElasticityProfiler::FromPoints({{1 << 20, 0.0, false}}, 1.3);
  EXPECT_EQ(profile.knee_bytes, 0u);
  EXPECT_EQ(profile.RecommendedBudget(), 0u);
}

TEST(ElasticityTest, ProfileSweepsGeometricGridAndFindsKnee) {
  const ElasticityProfiler::Config config{/*min=*/1 << 20, /*max=*/8 << 20, /*points=*/4, 1.3};
  int calls = 0;
  const ElasticityProfile profile =
      ElasticityProfiler::Profile(config, [&](std::uint64_t heap_bytes) -> double {
        ++calls;
        // Simulated curve with a working set of 2MB.
        return heap_bytes >= (2u << 20) ? 100.0 : 100.0 * (2u << 20) / heap_bytes;
      });
  EXPECT_EQ(calls, 4);
  EXPECT_GT(profile.knee_bytes, 0u);
  EXPECT_LE(profile.knee_bytes, static_cast<std::uint64_t>(2 << 20));
  EXPECT_LE(profile.knee_runtime_ms, 130.0);
}

// ---------------------------------------------- Per-job heap accounts & ranks

memsim::HeapConfig TinyHeap(std::uint64_t capacity) {
  memsim::HeapConfig config;
  config.capacity_bytes = capacity;
  config.real_pauses = false;
  return config;
}

TEST(JobAccountingTest, JobScopeNestsAndRestores) {
  EXPECT_EQ(memsim::CurrentJobId(), memsim::kNoJob);
  {
    memsim::JobScope outer(3);
    EXPECT_EQ(memsim::CurrentJobId(), 3u);
    {
      memsim::JobScope inner(7);
      EXPECT_EQ(memsim::CurrentJobId(), 7u);
    }
    EXPECT_EQ(memsim::CurrentJobId(), 3u);
  }
  EXPECT_EQ(memsim::CurrentJobId(), memsim::kNoJob);
}

TEST(JobAccountingTest, AllocationsAttributeToTheScopedJob) {
  memsim::ManagedHeap heap(TinyHeap(1 << 20));
  {
    memsim::JobScope scope(1);
    heap.Allocate(100 << 10);
  }
  {
    memsim::JobScope scope(2);
    heap.Allocate(50 << 10);
  }
  heap.Allocate(10 << 10);  // Unscoped: attributed to nobody.
  EXPECT_EQ(heap.job_live_bytes(1), static_cast<std::uint64_t>(100 << 10));
  EXPECT_EQ(heap.job_live_bytes(2), static_cast<std::uint64_t>(50 << 10));
  {
    memsim::JobScope scope(1);
    heap.Free(60 << 10);
  }
  EXPECT_EQ(heap.job_live_bytes(1), static_cast<std::uint64_t>(40 << 10));
  // Frees clamp at the account balance (attribution skew must not wrap).
  {
    memsim::JobScope scope(2);
    heap.Free(200 << 10);
  }
  EXPECT_EQ(heap.job_live_bytes(2), 0u);
}

TEST(JobAccountingTest, OverageAndResetSemantics) {
  memsim::ManagedHeap heap(TinyHeap(1 << 20));
  memsim::JobScope scope(1);
  heap.Allocate(100 << 10);
  EXPECT_EQ(heap.JobOverage(1), 0u);  // Unbudgeted: overage undefined -> 0.
  heap.SetJobBudget(1, 60 << 10);
  EXPECT_EQ(heap.JobOverage(1), static_cast<std::uint64_t>(40 << 10));
  heap.ResetJobAccount(1);
  EXPECT_EQ(heap.job_live_bytes(1), 0u);
  EXPECT_EQ(heap.job_budget_bytes(1), 0u);
}

TEST(JobAccountingTest, PressureRanksArbitrateBetweenTenants) {
  memsim::ManagedHeap heap(TinyHeap(4 << 20));
  // Job 1: 100KB over budget. Job 2: 300KB over. Job 3: under budget.
  heap.SetJobBudget(1, 100 << 10);
  heap.SetJobBudget(2, 100 << 10);
  heap.SetJobBudget(3, 500 << 10);
  {
    memsim::JobScope scope(1);
    heap.Allocate(200 << 10);
  }
  {
    memsim::JobScope scope(2);
    heap.Allocate(400 << 10);
  }
  {
    memsim::JobScope scope(3);
    heap.Allocate(100 << 10);
  }
  EXPECT_EQ(heap.PressureVictimRank(2), memsim::PressureRank::kFullReduce);
  EXPECT_EQ(heap.PressureVictimRank(1), memsim::PressureRank::kSpillOnly);
  EXPECT_EQ(heap.PressureVictimRank(3), memsim::PressureRank::kProtected);
  // Unbudgeted / unknown jobs never arbitrate: legacy full REDUCE.
  EXPECT_EQ(heap.PressureVictimRank(memsim::kNoJob), memsim::PressureRank::kFullReduce);
  EXPECT_EQ(heap.PressureVictimRank(9), memsim::PressureRank::kFullReduce);
}

TEST(JobAccountingTest, NoOverageAnywhereMeansSharedResponse) {
  memsim::ManagedHeap heap(TinyHeap(4 << 20));
  heap.SetJobBudget(1, 1 << 20);
  {
    memsim::JobScope scope(1);
    heap.Allocate(100 << 10);
  }
  // Within budget and nobody over: pressure is structural, everyone reduces.
  EXPECT_EQ(heap.PressureVictimRank(1), memsim::PressureRank::kFullReduce);
}

// ------------------------------------------------------------------ JobService

apps::AppConfig TenantAppConfig(const cluster::TenantBinding& binding,
                                std::uint64_t dataset_bytes, double tpch_scale = 0.2) {
  apps::AppConfig config;
  config.dataset_bytes = dataset_bytes;
  config.tpch_scale = tpch_scale;
  config.granularity_bytes = 16 << 10;
  config.max_workers = binding.max_workers > 0 ? binding.max_workers : 4;
  config.deadline_ms = 120'000.0;
  config.tenant = binding;
  return config;
}

JobSubmission MakeAppSubmission(const std::string& app, const std::string& name, int priority,
                                std::uint64_t budget, std::uint64_t dataset_bytes,
                                double tpch_scale = 0.2) {
  JobSubmission submission;
  submission.name = name;
  submission.priority = priority;
  submission.node_budget_bytes = budget;
  submission.run = [app, dataset_bytes, tpch_scale](
                       cluster::Cluster& cluster,
                       const cluster::TenantBinding& binding) -> JobOutcome {
    const apps::AppResult result = apps::RunHyracksApp(
        app, cluster, TenantAppConfig(binding, dataset_bytes, tpch_scale),
        apps::Mode::kITask);
    JobOutcome outcome;
    outcome.ok = result.metrics.succeeded;
    outcome.checksum = result.checksum;
    outcome.records = result.records;
    outcome.audit_violations = result.audit_violations;
    return outcome;
  };
  return submission;
}

// Solo fingerprint oracle: the same app/dataset on its own roomy cluster.
apps::AppResult RunSolo(const std::string& app, std::uint64_t dataset_bytes,
                        double tpch_scale = 0.2) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = 64 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);
  cluster::TenantBinding solo;
  return apps::RunHyracksApp(app, cl, TenantAppConfig(solo, dataset_bytes, tpch_scale),
                             apps::Mode::kITask);
}

TEST(JobServiceTest, DefaultBudgetIsAFairSliceAndFairShareWorkers) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = 8 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);
  JobServiceConfig config;
  config.max_concurrent = 2;
  config.headroom_fraction = 0.0;
  config.worker_slots = 8;
  JobService service(cl, config);

  const std::uint64_t ticket =
      service.Submit(MakeAppSubmission("WC", "wc", /*priority=*/1, /*budget=*/0, 128 << 10));
  service.Drain();
  const JobRecord record = service.Status(ticket);
  EXPECT_EQ(record.state, JobState::kDone);
  EXPECT_EQ(record.node_budget_bytes, static_cast<std::uint64_t>(4 << 20));  // 8MB / 2 slots.
  EXPECT_EQ(record.max_workers, 8);  // Alone: the whole worker allotment.
  EXPECT_GT(record.outcome.records, 0u);
}

TEST(JobServiceTest, ConcurrentTenantsReproduceSoloFingerprints) {
  chaos::SetAuditEnabled(true);
  const std::uint64_t wc_bytes = 384 << 10;
  const std::uint64_t hs_bytes = 256 << 10;
  const apps::AppResult solo_wc = RunSolo("WC", wc_bytes);
  const apps::AppResult solo_hs = RunSolo("HS", hs_bytes);
  const apps::AppResult solo_hj = RunSolo("HJ", 0);
  ASSERT_TRUE(solo_wc.metrics.succeeded);
  ASSERT_TRUE(solo_hs.metrics.succeeded);
  ASSERT_TRUE(solo_hj.metrics.succeeded);

  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = 8 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);
  JobServiceConfig config;
  config.max_concurrent = 3;  // All three tenants genuinely overlap.
  config.worker_slots = 9;
  JobService service(cl, config);

  const std::uint64_t wc =
      service.Submit(MakeAppSubmission("WC", "wc", 2, 1 << 20, wc_bytes));
  const std::uint64_t hs =
      service.Submit(MakeAppSubmission("HS", "hs", 1, 1 << 20, hs_bytes));
  const std::uint64_t hj = service.Submit(MakeAppSubmission("HJ", "hj", 0, 1 << 20, 0));
  service.Drain();

  const JobRecord wc_rec = service.Status(wc);
  const JobRecord hs_rec = service.Status(hs);
  const JobRecord hj_rec = service.Status(hj);
  ASSERT_EQ(wc_rec.state, JobState::kDone);
  ASSERT_EQ(hs_rec.state, JobState::kDone);
  ASSERT_EQ(hj_rec.state, JobState::kDone);
  EXPECT_TRUE(wc_rec.outcome.audit_violations.empty());
  EXPECT_TRUE(hs_rec.outcome.audit_violations.empty());
  EXPECT_TRUE(hj_rec.outcome.audit_violations.empty());
  // Per-tenant fingerprints match the solo oracles: sharing the cluster (and
  // its pressure) changed nothing about any tenant's result.
  EXPECT_EQ(wc_rec.outcome.checksum, solo_wc.checksum);
  EXPECT_EQ(wc_rec.outcome.records, solo_wc.records);
  EXPECT_EQ(hs_rec.outcome.checksum, solo_hs.checksum);
  EXPECT_EQ(hs_rec.outcome.records, solo_hs.records);
  EXPECT_EQ(hj_rec.outcome.checksum, solo_hj.checksum);
  EXPECT_EQ(hj_rec.outcome.records, solo_hj.records);
  const auto in_path = chaos::DrainViolations();
  EXPECT_TRUE(in_path.empty()) << in_path.front();

  const JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(JobServiceTest, ChaosIsolationStormTenantCannotPerturbVictim) {
  chaos::SetAuditEnabled(true);
  const std::uint64_t victim_bytes = 256 << 10;
  const apps::AppResult solo = RunSolo("HS", victim_bytes);
  ASSERT_TRUE(solo.metrics.succeeded);

  // Small shared heap; the storm tenant's working set is ~2.5x its budget, so
  // it spends the run shedding under cross-tenant arbitration while the
  // victim stays inside its own budget.
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = 6 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);
  JobServiceConfig config;
  config.max_concurrent = 2;
  config.worker_slots = 8;
  JobService service(cl, config);

  const std::uint64_t storm = service.Submit(
      MakeAppSubmission("WC", "storm", /*priority=*/0, /*budget=*/1 << 20, 2 << 20));
  const std::uint64_t victim = service.Submit(
      MakeAppSubmission("HS", "victim", /*priority=*/2, /*budget=*/2 << 20, victim_bytes));
  service.Drain();

  const JobRecord victim_rec = service.Status(victim);
  ASSERT_EQ(victim_rec.state, JobState::kDone)
      << "victim did not survive the storm";
  EXPECT_TRUE(victim_rec.outcome.audit_violations.empty())
      << victim_rec.outcome.audit_violations.front();
  // The isolation property: the storm next door changed nothing about the
  // victim's result.
  EXPECT_EQ(victim_rec.outcome.checksum, solo.checksum);
  EXPECT_EQ(victim_rec.outcome.records, solo.records);

  const JobRecord storm_rec = service.Status(storm);
  EXPECT_EQ(storm_rec.state, JobState::kDone);  // Slow, not dead.
  const auto in_path = chaos::DrainViolations();
  EXPECT_TRUE(in_path.empty()) << in_path.front();
}

}  // namespace
}  // namespace itask::jobsvc
