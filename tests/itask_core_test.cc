#include <gtest/gtest.h>

#include <filesystem>

#include "itask/job_state.h"
#include "itask/partition_queue.h"
#include "itask/task_graph.h"
#include "itask/typed_partition.h"

namespace itask::core {
namespace {

struct U64Traits {
  using Tuple = std::uint64_t;
  static std::uint64_t SizeOf(const Tuple&) { return 16; }  // 8 data + 8 "header".
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteVarint(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadVarint(); }
};

struct CountTraits {
  using Key = std::string;
  using Value = std::uint64_t;
  static std::uint64_t EntryOverhead() { return 48; }
  static std::uint64_t KeyBytes(const Key& k) { return k.size(); }
  static std::uint64_t ValueBytes(const Value&) { return 8; }
  static void WriteEntry(serde::Writer& w, const Key& k, const Value& v) {
    w.WriteString(k);
    w.WriteVarint(v);
  }
  static std::pair<Key, Value> ReadEntry(serde::Reader& r) {
    Key k = r.ReadString();
    Value v = r.ReadVarint();
    return {std::move(k), v};
  }
};

memsim::HeapConfig FastHeap(std::uint64_t capacity = 16 << 20) {
  memsim::HeapConfig config;
  config.capacity_bytes = capacity;
  config.real_pauses = false;
  return config;
}

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest()
      : heap_(FastHeap()), spill_(std::filesystem::temp_directory_path(), "parttest") {}

  TypeId type_ = TypeIds::Get("test.u64");
  memsim::ManagedHeap heap_;
  serde::SpillManager spill_;
};

TEST_F(PartitionTest, AppendChargesHeap) {
  VectorPartition<U64Traits> p(type_, &heap_, &spill_);
  for (std::uint64_t i = 0; i < 100; ++i) {
    p.Append(i);
  }
  EXPECT_EQ(p.TupleCount(), 100u);
  EXPECT_EQ(p.PayloadBytes(), 1600u);
  EXPECT_EQ(heap_.live_bytes(), 1600u);
}

TEST_F(PartitionTest, SpillFreesHeapAndLoadRestores) {
  auto p = std::make_shared<VectorPartition<U64Traits>>(type_, &heap_, &spill_);
  for (std::uint64_t i = 0; i < 50; ++i) {
    p->Append(i * 3);
  }
  const std::uint64_t freed = p->Spill();
  EXPECT_EQ(freed, 800u);
  EXPECT_FALSE(p->resident());
  EXPECT_EQ(heap_.live_bytes(), 0u);

  p->EnsureResident();
  EXPECT_TRUE(p->resident());
  EXPECT_EQ(p->TupleCount(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(p->At(i), i * 3);
  }
}

TEST_F(PartitionTest, SpillSerializesOnlyUnprocessedSuffix) {
  VectorPartition<U64Traits> p(type_, &heap_, &spill_);
  for (std::uint64_t i = 0; i < 10; ++i) {
    p.Append(i);
  }
  p.set_cursor(4);
  p.Spill();
  p.EnsureResident();
  EXPECT_EQ(p.TupleCount(), 6u);
  EXPECT_EQ(p.cursor(), 0u);
  EXPECT_EQ(p.At(0), 4u);  // First unprocessed tuple.
}

TEST_F(PartitionTest, ReleaseProcessedPrefixFreesBytes) {
  VectorPartition<U64Traits> p(type_, &heap_, &spill_);
  for (std::uint64_t i = 0; i < 10; ++i) {
    p.Append(i);
  }
  p.set_cursor(7);
  const std::uint64_t freed = p.ReleaseProcessedPrefix();
  EXPECT_EQ(freed, 7u * 16u);
  EXPECT_EQ(p.TupleCount(), 3u);
  EXPECT_EQ(p.cursor(), 0u);
  EXPECT_EQ(p.At(0), 7u);
  EXPECT_EQ(heap_.live_bytes(), 3u * 16u);
}

TEST_F(PartitionTest, DoubleSpillIsNoop) {
  VectorPartition<U64Traits> p(type_, &heap_, &spill_);
  p.Append(1);
  EXPECT_GT(p.Spill(), 0u);
  EXPECT_EQ(p.Spill(), 0u);
}

TEST_F(PartitionTest, TransferMovesChargeBetweenHeaps) {
  memsim::ManagedHeap other(FastHeap());
  serde::SpillManager other_spill(std::filesystem::temp_directory_path(), "other");
  VectorPartition<U64Traits> p(type_, &heap_, &spill_);
  for (std::uint64_t i = 0; i < 20; ++i) {
    p.Append(i);
  }
  p.TransferTo(&other, &other_spill);
  EXPECT_EQ(heap_.live_bytes(), 0u);
  EXPECT_EQ(other.live_bytes(), 20u * 16u);
  EXPECT_EQ(p.TupleCount(), 20u);
  EXPECT_EQ(p.At(19), 19u);
}

TEST_F(PartitionTest, HashAggUpsertAggregates) {
  TypeId t = TypeIds::Get("test.counts");
  HashAggPartition<CountTraits> p(t, &heap_, &spill_);
  auto add = [](std::uint64_t& v) {
    ++v;
    return 0;
  };
  p.Upsert("a", add);
  p.Upsert("b", add);
  p.Upsert("a", add);
  EXPECT_EQ(p.EntryCount(), 2u);
  EXPECT_EQ(p.map().at("a"), 2u);
  // 2 entries: overhead 48 + key 1 each.
  EXPECT_EQ(p.PayloadBytes(), 2u * 49u);
}

TEST_F(PartitionTest, HashAggFreezeAndIterate) {
  TypeId t = TypeIds::Get("test.counts");
  HashAggPartition<CountTraits> p(t, &heap_, &spill_);
  p.Upsert("x", [](std::uint64_t& v) {
    v = 5;
    return 0;
  });
  EXPECT_FALSE(p.frozen());
  const auto& tuple = p.At(0);
  EXPECT_TRUE(p.frozen());
  EXPECT_EQ(tuple.first, "x");
  EXPECT_EQ(tuple.second, 5u);
}

TEST_F(PartitionTest, HashAggSpillRoundTrip) {
  TypeId t = TypeIds::Get("test.counts");
  auto p = std::make_shared<HashAggPartition<CountTraits>>(t, &heap_, &spill_);
  p->Upsert("k1", [](std::uint64_t& v) {
    v = 10;
    return 0;
  });
  p->Upsert("k2", [](std::uint64_t& v) {
    v = 20;
    return 0;
  });
  p->set_tag(7);
  p->Spill();
  EXPECT_EQ(heap_.live_bytes(), 0u);
  p->EnsureResident();
  EXPECT_EQ(p->tag(), 7);
  EXPECT_EQ(p->TupleCount(), 2u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < p->TupleCount(); ++i) {
    total += p->At(i).second;
  }
  EXPECT_EQ(total, 30u);
}

class QueueTest : public ::testing::Test {
 protected:
  QueueTest()
      : heap_(FastHeap()),
        spill_(std::filesystem::temp_directory_path(), "queuetest"),
        queue_(&state_) {}

  PartitionPtr Make(TypeId type, Tag tag, int tuples = 3) {
    auto p = std::make_shared<VectorPartition<U64Traits>>(type, &heap_, &spill_);
    for (int i = 0; i < tuples; ++i) {
      p->Append(static_cast<std::uint64_t>(i));
    }
    p->set_tag(tag);
    return p;
  }

  memsim::ManagedHeap heap_;
  serde::SpillManager spill_;
  JobState state_;
  PartitionQueue queue_;
};

TEST_F(QueueTest, PushPopUpdatesJobState) {
  const TypeId t = TypeIds::Get("q.a");
  queue_.Push(Make(t, kNoTag));
  EXPECT_EQ(state_.queued_by_type[t].load(), 1u);
  EXPECT_EQ(state_.total_queued.load(), 1u);
  auto dp = queue_.PopOne(t);
  ASSERT_NE(dp, nullptr);
  EXPECT_TRUE(dp->pinned());
  EXPECT_EQ(state_.total_queued.load(), 0u);
}

TEST_F(QueueTest, PopPrefersResident) {
  const TypeId t = TypeIds::Get("q.b");
  auto spilled = Make(t, kNoTag);
  spilled->Spill();
  auto resident = Make(t, kNoTag);
  queue_.Push(spilled);
  queue_.Push(resident);
  auto dp = queue_.PopOne(t);
  EXPECT_TRUE(dp->resident());
}

TEST_F(QueueTest, PopTagGroupTakesWholeTag) {
  const TypeId t = TypeIds::Get("q.c");
  queue_.Push(Make(t, 1));
  queue_.Push(Make(t, 1));
  queue_.Push(Make(t, 2));
  auto group = queue_.PopTagGroup(t);
  EXPECT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0]->tag(), group[1]->tag());
  EXPECT_TRUE(queue_.HasAny(t));  // Tag 2 remains.
}

TEST_F(QueueTest, ResidentSnapshotSkipsPinnedAndSpilled) {
  const TypeId t = TypeIds::Get("q.d");
  auto a = Make(t, kNoTag);
  auto b = Make(t, kNoTag);
  b->Spill();
  queue_.Push(a);
  queue_.Push(b);
  EXPECT_EQ(queue_.ResidentSnapshot().size(), 1u);
  queue_.PopOne(t);  // Pops (and pins) the resident one.
  EXPECT_TRUE(queue_.ResidentSnapshot().empty());
}

TEST_F(QueueTest, PopEmptyTypeReturnsNull) {
  EXPECT_EQ(queue_.PopOne(TypeIds::Get("q.never")), nullptr);
  EXPECT_TRUE(queue_.PopTagGroup(TypeIds::Get("q.never")).empty());
}

class GraphTest : public ::testing::Test {
 protected:
  static TaskSpec Spec(const std::string& name, const std::string& in, const std::string& out,
                       bool merge = false) {
    TaskSpec spec;
    spec.name = name;
    spec.input_type = TypeIds::Get(in);
    spec.output_type = TypeIds::Get(out);
    spec.is_merge = merge;
    spec.factory = [] { return std::unique_ptr<ITaskBase>(); };
    return spec;
  }
};

TEST_F(GraphTest, FinishDistances) {
  TaskGraph graph;
  graph.Register(Spec("map", "g.in", "g.mid"));
  graph.Register(Spec("reduce", "g.mid", "g.out"));
  graph.Register(Spec("merge", "g.out", "g.out", /*merge=*/true));
  graph.ComputeFinishDistances();
  EXPECT_EQ(graph.spec(2).finish_distance, 0);  // Merge self-loop is terminal.
  EXPECT_EQ(graph.spec(1).finish_distance, 1);
  EXPECT_EQ(graph.spec(0).finish_distance, 2);
}

TEST_F(GraphTest, ConsumerAndProducers) {
  TaskGraph graph;
  graph.Register(Spec("map", "g2.in", "g2.mid"));
  graph.Register(Spec("reduce", "g2.mid", "g2.out"));
  EXPECT_EQ(graph.ConsumerOf(TypeIds::Get("g2.mid"))->name, "reduce");
  EXPECT_EQ(graph.ConsumerOf(TypeIds::Get("g2.out")), nullptr);
  EXPECT_EQ(graph.ProducersOf(TypeIds::Get("g2.mid")).size(), 1u);
}

TEST_F(GraphTest, DuplicateConsumerRejected) {
  TaskGraph graph;
  graph.Register(Spec("a", "g3.in", "g3.x"));
  EXPECT_THROW(graph.Register(Spec("b", "g3.in", "g3.y")), std::runtime_error);
}

TEST_F(GraphTest, UpstreamQuiescence) {
  TaskGraph graph;
  const int map_id = graph.Register(Spec("map", "g4.in", "g4.mid"));
  const int reduce_id = graph.Register(Spec("reduce", "g4.mid", "g4.agg"));
  graph.Register(Spec("merge", "g4.agg", "g4.agg", /*merge=*/true));
  graph.ComputeFinishDistances();
  const TaskSpec& merge = graph.spec(2);

  JobState state;
  // External input still flowing: not quiescent.
  EXPECT_FALSE(graph.UpstreamQuiescent(merge, state));
  state.external_done.store(true);
  EXPECT_TRUE(graph.UpstreamQuiescent(merge, state));

  // A running upstream producer blocks merges.
  state.NoteStart(reduce_id);
  EXPECT_FALSE(graph.UpstreamQuiescent(merge, state));
  state.NoteFinish(reduce_id);

  state.NoteStart(map_id);
  EXPECT_FALSE(graph.UpstreamQuiescent(merge, state));
  state.NoteFinish(map_id);

  // Queued upstream inputs block merges.
  state.NotePush(TypeIds::Get("g4.in"));
  EXPECT_FALSE(graph.UpstreamQuiescent(merge, state));
  state.NotePop(TypeIds::Get("g4.in"));
  EXPECT_TRUE(graph.UpstreamQuiescent(merge, state));

  // The merge's own queued inputs do not block it.
  state.NotePush(TypeIds::Get("g4.agg"));
  EXPECT_TRUE(graph.UpstreamQuiescent(merge, state));
}

}  // namespace
}  // namespace itask::core
