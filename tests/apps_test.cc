// Cross-mode equivalence tests: every application must produce the same
// result fingerprint in regular mode (pressure-free), ITask mode
// (pressure-free) and ITask mode under a heap small enough to force
// interrupts and spilling.
#include <gtest/gtest.h>

#include "apps/hadoop_problems.h"
#include "apps/hyracks_apps.h"

namespace itask::apps {
namespace {

cluster::Cluster MakeCluster(std::uint64_t heap_bytes, int nodes = 2) {
  cluster::ClusterConfig cc;
  cc.num_nodes = nodes;
  cc.heap.capacity_bytes = heap_bytes;
  cc.heap.real_pauses = false;
  return cluster::Cluster(cc);
}

AppConfig SmallConfig() {
  AppConfig config;
  config.dataset_bytes = 256 << 10;
  config.tpch_scale = 0.2;
  config.threads = 4;
  config.max_workers = 4;
  config.granularity_bytes = 16 << 10;
  return config;
}

class HyracksAppTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HyracksAppTest, ItaskMatchesRegularPressureFree) {
  const AppConfig config = SmallConfig();
  auto regular_cluster = MakeCluster(64 << 20);
  const AppResult regular = RunHyracksApp(GetParam(), regular_cluster, config, Mode::kRegular);
  ASSERT_TRUE(regular.metrics.succeeded) << regular.metrics.Summary();
  ASSERT_GT(regular.records, 0u);

  auto itask_cluster = MakeCluster(64 << 20);
  const AppResult itask = RunHyracksApp(GetParam(), itask_cluster, config, Mode::kITask);
  ASSERT_TRUE(itask.metrics.succeeded) << itask.metrics.Summary();
  EXPECT_EQ(itask.checksum, regular.checksum);
  EXPECT_EQ(itask.records, regular.records);
}

TEST_P(HyracksAppTest, ItaskSurvivesPressuredHeapWithSameResult) {
  const AppConfig config = SmallConfig();
  auto reference_cluster = MakeCluster(64 << 20);
  const AppResult reference =
      RunHyracksApp(GetParam(), reference_cluster, config, Mode::kITask);
  ASSERT_TRUE(reference.metrics.succeeded);

  // ~1.5MB per node vs a multi-MB working set: interrupts are guaranteed.
  auto pressured_cluster = MakeCluster(1536 << 10);
  const AppResult pressured =
      RunHyracksApp(GetParam(), pressured_cluster, config, Mode::kITask);
  ASSERT_TRUE(pressured.metrics.succeeded) << pressured.metrics.Summary();
  EXPECT_EQ(pressured.checksum, reference.checksum);
  EXPECT_EQ(pressured.records, reference.records);
}

INSTANTIATE_TEST_SUITE_P(AllApps, HyracksAppTest,
                         ::testing::Values("WC", "HS", "II", "HJ", "GR"));

class HadoopProblemTest : public ::testing::TestWithParam<const char*> {};

HadoopProblemConfig SmallProblemConfig() {
  HadoopProblemConfig config;
  config.dataset_bytes = 128 << 10;
  config.threads = 4;
  config.max_workers = 4;
  config.granularity_bytes = 16 << 10;
  config.msa_table_bytes = 64 << 10;
  config.crp_amplification = 200;
  return config;
}

TEST_P(HadoopProblemTest, ItaskMatchesRegular) {
  const HadoopProblemConfig config = SmallProblemConfig();
  auto regular_cluster = MakeCluster(64 << 20, /*nodes=*/1);
  const AppResult regular = RunHadoopProblem(GetParam(), regular_cluster, config, Mode::kRegular);
  ASSERT_TRUE(regular.metrics.succeeded) << regular.metrics.Summary();
  ASSERT_GT(regular.records, 0u);

  auto itask_cluster = MakeCluster(64 << 20, /*nodes=*/1);
  const AppResult itask = RunHadoopProblem(GetParam(), itask_cluster, config, Mode::kITask);
  ASSERT_TRUE(itask.metrics.succeeded) << itask.metrics.Summary();
  EXPECT_EQ(itask.checksum, regular.checksum);
  EXPECT_EQ(itask.records, regular.records);
}

TEST_P(HadoopProblemTest, ItaskSurvivesPressure) {
  const HadoopProblemConfig config = SmallProblemConfig();
  auto reference_cluster = MakeCluster(64 << 20, /*nodes=*/1);
  const AppResult reference =
      RunHadoopProblem(GetParam(), reference_cluster, config, Mode::kITask);
  ASSERT_TRUE(reference.metrics.succeeded);

  // CRP's longest sentence alone needs ~2.6MB of lemmatizer temporaries and
  // WCM's final stripe aggregate is ~1.3MB — irreducible live footprints that
  // must fit (the paper's requirement that per-bucket results fit in memory).
  // The other problems get a 1MB heap.
  const std::string name = GetParam();
  const std::uint64_t heap = (name == "CRP" || name == "WCM") ? (4 << 20) : (1 << 20);
  auto pressured_cluster = MakeCluster(heap, /*nodes=*/1);
  const AppResult pressured =
      RunHadoopProblem(GetParam(), pressured_cluster, config, Mode::kITask);
  ASSERT_TRUE(pressured.metrics.succeeded) << pressured.metrics.Summary();
  EXPECT_EQ(pressured.checksum, reference.checksum);
  EXPECT_EQ(pressured.records, reference.records);
}

INSTANTIATE_TEST_SUITE_P(AllProblems, HadoopProblemTest,
                         ::testing::Values("MSA", "IMC", "IIB", "WCM", "CRP"));

TEST(RegularCrashTest, TinyHeapCrashesRegularButNotITask) {
  AppConfig config = SmallConfig();
  config.dataset_bytes = 2 << 20;
  config.threads = 8;        // The "default" (crashing) configuration.
  config.deadline_ms = 120'000;

  auto regular_cluster = MakeCluster(1 << 20);
  const AppResult regular = RunWordCount(regular_cluster, config, Mode::kRegular);
  EXPECT_FALSE(regular.metrics.succeeded);
  EXPECT_TRUE(regular.metrics.out_of_memory);

  auto itask_cluster = MakeCluster(1 << 20);
  const AppResult itask = RunWordCount(itask_cluster, config, Mode::kITask);
  EXPECT_TRUE(itask.metrics.succeeded) << itask.metrics.Summary();
  EXPECT_GT(itask.metrics.interrupts + itask.metrics.spilled_bytes, 0u);
}

}  // namespace
}  // namespace itask::apps
