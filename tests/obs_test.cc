// Tests for the obs subsystem: tracer concurrency and ring semantics, the
// metrics registry, histogram math, and the Chrome trace_event exporter
// (including a golden-file check of the exact JSON; regenerate with
// OBS_TEST_REGEN=1 ./obs_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/event.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"

namespace itask::obs {
namespace {

TEST(TracerTest, StartsDisabledAndEmitsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.Emit(EventKind::kGc, 0, 1, 2, 3);
  EXPECT_TRUE(tracer.Snapshot().empty());
  const TracerStats stats = tracer.stats();
  EXPECT_EQ(stats.emitted, 0u);
  EXPECT_EQ(stats.threads, 0u);  // Disabled emits never register a ring.
}

TEST(TracerTest, ConcurrentEmissionLosesNothing) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  Tracer tracer(1 << 14);
  tracer.set_enabled(true);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracer.Emit(EventKind::kSpillWrite, /*node=*/7, /*a=*/static_cast<std::uint64_t>(t),
                    /*b=*/i);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  const std::vector<Event> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  const TracerStats stats = tracer.stats();
  EXPECT_EQ(stats.emitted, kThreads * kPerThread);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.threads, static_cast<std::uint64_t>(kThreads));

  // No torn or reordered events: each emitter's sequence numbers come back
  // complete and in emission order, and every event keeps its payload intact.
  std::map<std::uint64_t, std::vector<std::uint64_t>> seqs_by_emitter;
  std::map<std::uint64_t, std::uint16_t> tid_by_emitter;
  for (const Event& event : events) {
    EXPECT_EQ(event.kind, EventKind::kSpillWrite);
    EXPECT_EQ(event.node, 7u);
    seqs_by_emitter[event.a].push_back(event.b);
    const auto [it, inserted] = tid_by_emitter.emplace(event.a, event.tid);
    if (!inserted) {
      EXPECT_EQ(it->second, event.tid) << "emitter " << event.a << " spread across rings";
    }
  }
  ASSERT_EQ(seqs_by_emitter.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [emitter, seqs] : seqs_by_emitter) {
    ASSERT_EQ(seqs.size(), kPerThread) << "emitter " << emitter;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      // Equal timestamps sort stably within a ring, so order is preserved.
      ASSERT_EQ(seqs[i], i) << "emitter " << emitter;
    }
  }
}

TEST(TracerTest, RingWrapKeepsNewestAndCountsDrops) {
  constexpr std::uint64_t kCapacity = 1024;
  constexpr std::uint64_t kEmitted = 5000;
  Tracer tracer(kCapacity);
  for (std::uint64_t i = 0; i < kEmitted; ++i) {
    tracer.EmitAt(/*t_ns=*/i, EventKind::kSpillRead, /*node=*/0, /*tid=*/0, /*a=*/i);
  }
  const std::vector<Event> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(events.front().a, kEmitted - kCapacity);  // Oldest survivors gone.
  EXPECT_EQ(events.back().a, kEmitted - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, events[i - 1].a + 1);
  }
  const TracerStats stats = tracer.stats();
  EXPECT_EQ(stats.emitted, kEmitted);
  EXPECT_EQ(stats.dropped, kEmitted - kCapacity);
}

TEST(TracerTest, ClearResetsRings) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.Emit(EventKind::kGc, 1);
  ASSERT_EQ(tracer.Snapshot().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.stats().emitted, 0u);
  tracer.Emit(EventKind::kGc, 1);  // The thread's cached ring still works.
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(TracerTest, SnapshotMergesThreadsInTimestampOrder) {
  Tracer tracer;
  tracer.EmitAt(30, EventKind::kSignalReduce, 0, /*tid=*/2);
  tracer.EmitAt(10, EventKind::kSignalGrow, 0, /*tid=*/1);
  tracer.EmitAt(20, EventKind::kPressureOn, 0, /*tid=*/0);
  const std::vector<Event> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kSignalGrow);
  EXPECT_EQ(events[1].kind, EventKind::kPressureOn);
  EXPECT_EQ(events[2].kind, EventKind::kSignalReduce);
}

TEST(MetricsRegistryTest, FindOrCreateAndRead) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.bytes");
  c.Add(5);
  registry.counter("test.bytes").Add(7);  // Same instance.
  EXPECT_EQ(registry.CounterValue("test.bytes"), 12u);
  EXPECT_EQ(registry.CounterValue("absent"), 0u);

  registry.gauge("test.level").Set(-3);
  EXPECT_EQ(registry.gauge("test.level").value(), -3);

  Histogram& h = registry.histogram("test.lat", {10, 100, 1000});
  h.Observe(5);
  h.Observe(50);
  h.Observe(5000);
  const HistogramSnapshot snap = registry.HistogramValue("test.lat");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.max, 5000u);
  EXPECT_TRUE(registry.HistogramValue("absent").empty());

  std::ostringstream os;
  registry.Render(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("test.bytes"), std::string::npos);
  EXPECT_NE(text.find("test.lat"), std::string::npos);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  Histogram hist({100, 200, 400});
  for (int i = 0; i < 100; ++i) {
    hist.Observe(150);  // All in the (100, 200] bucket.
  }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_GT(snap.Quantile(0.5), 100.0);
  EXPECT_LE(snap.Quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 150.0);
}

TEST(HistogramTest, MergeIsBucketwiseForMatchingBounds) {
  Histogram a({10, 20});
  Histogram b({10, 20});
  a.Observe(5);
  b.Observe(15);
  b.Observe(100);
  HistogramSnapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 120u);
  EXPECT_EQ(merged.max, 100u);
  ASSERT_EQ(merged.counts.size(), 3u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
  EXPECT_EQ(merged.counts[2], 1u);

  // Mismatched bounds degrade to scalar-only stats instead of garbage buckets.
  Histogram c({1000});
  c.Observe(500);
  merged.Merge(c.snapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_TRUE(merged.counts.empty());
  EXPECT_DOUBLE_EQ(merged.Quantile(0.5), static_cast<double>(merged.max));
}

// Deterministic fixture shared by the golden and round-trip tests: one of
// each interesting export shape (GC slice with LUGC, rule-attributed
// interrupts, spill I/O, Fig-11c samples).
std::vector<Event> GoldenFixture() {
  Tracer tracer;
  tracer.EmitAt(1'000'000, EventKind::kRuntimeStart, 0, 0);
  tracer.EmitAt(2'500'000, EventKind::kGc, 0, 1, /*a=*/1 << 20, /*b=*/3 << 20,
                /*aux=*/1500, /*flags=*/0);
  tracer.EmitAt(4'000'000, EventKind::kGc, 0, 1, /*a=*/1024, /*b=*/(4 << 20),
                /*aux=*/2000, kFlagLugc);
  tracer.EmitAt(4'100'000, EventKind::kPressureOn, 0, 1);
  tracer.EmitAt(4'200'000, EventKind::kSignalReduce, 0, 1, /*a=*/2 << 20);
  tracer.EmitAt(4'300'000, EventKind::kVictimSelect, 0, 1, /*a=*/321, /*b=*/0, /*aux=*/2,
                static_cast<std::uint8_t>(InterruptRule::kFinishLine));
  tracer.EmitAt(4'900'000, EventKind::kTaskInterrupt, 0, 2, /*a=*/600'000, /*b=*/0, /*aux=*/2,
                static_cast<std::uint8_t>(InterruptRule::kFinishLine));
  tracer.EmitAt(5'000'000, EventKind::kPartitionSerialized, 0, 2, /*a=*/512 << 10, /*b=*/3,
                /*aux=*/11);
  tracer.EmitAt(5'100'000, EventKind::kSpillWrite, 0, 2, /*a=*/512 << 10);
  tracer.EmitAt(6'000'000, EventKind::kActiveSample, 0, 3, /*a=*/5, /*b=*/0, /*aux=*/1);
  tracer.EmitAt(6'000'000, EventKind::kActiveSpecCount, 0, 3, /*a=*/0, /*b=*/3, /*aux=*/1);
  tracer.EmitAt(6'000'000, EventKind::kActiveSpecCount, 0, 3, /*a=*/1, /*b=*/2, /*aux=*/1);
  tracer.EmitAt(7'000'000, EventKind::kRuntimeStop, 0, 0, /*a=*/6'000'000);
  return tracer.Snapshot();
}

TEST(TraceExportTest, ChromeTraceMatchesGoldenFile) {
  const std::string json = ChromeTraceJson(GoldenFixture());
  const std::string golden_path = std::string(OBS_TEST_GOLDEN_DIR) + "/chrome_trace_golden.json";
  if (std::getenv("OBS_TEST_REGEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << json;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (run with OBS_TEST_REGEN=1 to create)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(json, ss.str()) << "exporter output drifted from the golden file; "
                               "verify in chrome://tracing, then OBS_TEST_REGEN=1";
}

TEST(TraceExportTest, ChromeTraceRoundTrips) {
  const std::vector<Event> fixture = GoldenFixture();
  const std::string json = ChromeTraceJson(fixture);

  std::vector<ParsedEvent> parsed;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), fixture.size());
  for (std::size_t i = 0; i < fixture.size(); ++i) {
    EXPECT_EQ(parsed[i].name, EventKindName(fixture[i].kind));
    EXPECT_EQ(parsed[i].pid, fixture[i].node);
    EXPECT_EQ(parsed[i].tid, fixture[i].tid);
    if (fixture[i].kind == EventKind::kGc) {
      EXPECT_EQ(parsed[i].ph, "X");
      EXPECT_DOUBLE_EQ(parsed[i].dur_us, static_cast<double>(fixture[i].aux));
      // The slice spans [t - pause, t]: ts was shifted back by the duration.
      EXPECT_NEAR(parsed[i].ts_us + parsed[i].dur_us,
                  static_cast<double>(fixture[i].t_ns) / 1000.0, 1e-6);
    } else {
      EXPECT_EQ(parsed[i].ph, "i");
      EXPECT_NEAR(parsed[i].ts_us, static_cast<double>(fixture[i].t_ns) / 1000.0, 1e-6);
    }
  }
}

TEST(TraceExportTest, ParserRejectsMalformedInput) {
  std::vector<ParsedEvent> parsed;
  std::string error;
  EXPECT_FALSE(ParseChromeTrace("[]", &parsed, &error));
  EXPECT_NE(error.find("envelope"), std::string::npos);
  EXPECT_FALSE(ParseChromeTrace("{\"traceEvents\":[\n{\"name\":\"gc\"\n]}", &parsed, &error));
  EXPECT_NE(error.find("braces"), std::string::npos);
}

TEST(TraceExportTest, SummaryAggregatesHeadlines) {
  std::ostringstream os;
  const TracerStats stats{13, 0, 4};
  WriteTraceSummary(os, GoldenFixture(), &stats);
  const std::string text = os.str();
  EXPECT_NE(text.find("13 events"), std::string::npos);
  EXPECT_NE(text.find("emitted=13"), std::string::npos);
  EXPECT_NE(text.find("gc detail: lugc=1"), std::string::npos);
  EXPECT_NE(text.find("finish_line=1"), std::string::npos);
  EXPECT_NE(text.find("written=524288B"), std::string::npos);
}

TEST(TraceExportTest, TimelineTruncatesAtMaxLines) {
  std::ostringstream os;
  WriteTraceTimeline(os, GoldenFixture(), /*max_lines=*/2);
  const std::string text = os.str();
  EXPECT_NE(text.find("runtime_start"), std::string::npos);
  EXPECT_NE(text.find("more)"), std::string::npos);
  EXPECT_EQ(text.find("runtime_stop"), std::string::npos);
}

TEST(SpanTest, IdsAreDeterministicAndFieldSensitive) {
  const std::uint64_t trace = TraceIdFromSeed(42);
  EXPECT_NE(trace, 0u);
  EXPECT_EQ(trace, TraceIdFromSeed(42));
  EXPECT_NE(trace, TraceIdFromSeed(43));

  const std::uint64_t base = SpanId(trace, 0, 1, 2, 3, 4, 5);
  EXPECT_NE(base, 0u);
  EXPECT_EQ(base, SpanId(trace, 0, 1, 2, 3, 4, 5));
  // Every input field participates in the hash: a change to any one of them
  // must move the id, or two different hops would share a flow line.
  EXPECT_NE(base, SpanId(trace + 1, 0, 1, 2, 3, 4, 5));
  EXPECT_NE(base, SpanId(trace, 1, 1, 2, 3, 4, 5));
  EXPECT_NE(base, SpanId(trace, 0, 2, 2, 3, 4, 5));
  EXPECT_NE(base, SpanId(trace, 0, 1, 3, 3, 4, 5));
  EXPECT_NE(base, SpanId(trace, 0, 1, 2, 4, 4, 5));
  EXPECT_NE(base, SpanId(trace, 0, 1, 2, 3, 5, 5));
  EXPECT_NE(base, SpanId(trace, 0, 1, 2, 3, 4, 6));
}

TEST(HistogramTest, LiveMergeIsBucketExact) {
  Histogram a({10, 100});
  Histogram b({10, 100});
  a.Observe(5);
  b.Observe(50);
  b.Observe(500);
  ASSERT_TRUE(a.Merge(b.snapshot()));
  const HistogramSnapshot merged = a.snapshot();
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 555u);
  EXPECT_EQ(merged.max, 500u);
  ASSERT_EQ(merged.counts.size(), 3u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
  EXPECT_EQ(merged.counts[2], 1u);

  // An empty snapshot is a no-op success; a mismatched ladder is a refused
  // no-op — the histogram must be bit-identical afterwards either way.
  ASSERT_TRUE(a.Merge(HistogramSnapshot{}));
  Histogram mismatched({7});
  mismatched.Observe(3);
  ASSERT_FALSE(a.Merge(mismatched.snapshot()));
  const HistogramSnapshot after = a.snapshot();
  EXPECT_EQ(after.count, merged.count);
  EXPECT_EQ(after.sum, merged.sum);
  EXPECT_EQ(after.counts, merged.counts);
}

TEST(HistogramTest, MergedQuantilesStayMonotonic) {
  Histogram a(InterruptLatencyBoundsNs());
  Histogram b(InterruptLatencyBoundsNs());
  for (int i = 0; i < 200; ++i) {
    a.Observe(static_cast<std::uint64_t>(1000 + i * 997));
    b.Observe(static_cast<std::uint64_t>(50'000 + i * 40'013));
  }
  ASSERT_TRUE(a.Merge(b.snapshot()));
  const HistogramSnapshot merged = a.snapshot();
  EXPECT_EQ(merged.count, 400u);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = merged.Quantile(q);
    EXPECT_GE(v, prev) << "quantile regressed at q=" << q;
    prev = v;
  }
  // Note Quantile(1.0) may exceed the observed max: it interpolates to the
  // covering bucket's upper bound, which is the documented tradeoff of the
  // fixed-ladder histogram.
}

TEST(TraceExportTest, FlowEventsExportAsSendRecvPairs) {
  const std::uint64_t trace = TraceIdFromSeed(7);
  const std::uint64_t span = SpanId(trace, /*msg_kind=*/0, 0, 1, 3, 0, 9);
  Tracer tracer;
  tracer.EmitAt(1'000'000, EventKind::kMsgSend, 0, 0, span, /*b=*/2048,
                FlowAux(/*peer=*/1, /*msg_kind=*/0));
  tracer.EmitAt(2'000'000, EventKind::kMsgRecv, 1, 0, span, /*b=*/2048,
                FlowAux(/*peer=*/0, /*msg_kind=*/0));
  tracer.EmitAt(3'000'000, EventKind::kMsgSend, 1, 0, span + 1, /*b=*/4096,
                FlowAux(/*peer=*/0, /*msg_kind=*/0), kFlagMigration);
  const std::string json = ChromeTraceJson(tracer.Snapshot());
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("flow_shuffle"), std::string::npos);
  EXPECT_NE(json.find("flow_migration"), std::string::npos);

  std::vector<ParsedEvent> parsed;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].ph, "s");
  EXPECT_EQ(parsed[1].ph, "f");
  EXPECT_FALSE(parsed[0].id.empty());
  EXPECT_EQ(parsed[0].id, parsed[1].id);  // Same span: one flow line.
  EXPECT_NE(parsed[0].id, parsed[2].id);
  EXPECT_EQ(parsed[0].a, span);
  EXPECT_EQ(parsed[0].b, 2048u);
  EXPECT_EQ(FlowPeer(parsed[0].aux), 1);
  EXPECT_EQ(FlowMsgKind(parsed[0].aux), 0);
}

TEST(TraceExportTest, NetEventsDecodeEndpointField) {
  Tracer tracer;
  // Wire encoding is endpoint+1 (0 = "no endpoint"); the exporter must give
  // back the real endpoint, not the off-by-one wire value.
  tracer.EmitAt(1'000'000, EventKind::kNetStall, 0, 0, /*a=*/5'000, /*b=*/8,
                /*aux=*/3);
  tracer.EmitAt(2'000'000, EventKind::kNetFlush, 0, 0, /*a=*/12, /*b=*/4096,
                /*aux=*/1);
  const std::vector<Event> events = tracer.Snapshot();
  const std::string json = ChromeTraceJson(events);
  EXPECT_NE(json.find("\"dst\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dst\":0"), std::string::npos);
  std::ostringstream timeline;
  WriteTraceTimeline(timeline, events);
  EXPECT_NE(timeline.str().find("dst=2"), std::string::npos);
}

TEST(TraceExportTest, ExportParsesUnderConcurrentWriters) {
  Tracer tracer(1 << 10);  // Small rings: wraps (drops) happen mid-export.
  tracer.set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tracer, &stop, t] {
      std::uint64_t i = 0;
      // do-while: each writer lands at least one event even if the main
      // thread's export rounds finish before this thread gets scheduled.
      do {
        tracer.Emit(EventKind::kSpillWrite, static_cast<std::uint16_t>(t), i++);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  // Snapshots taken while emitters run must still export parseable JSON —
  // this is exactly what the flight recorder does at trigger time.
  for (int round = 0; round < 20; ++round) {
    const std::string json = ChromeTraceJson(tracer.Snapshot());
    std::vector<ParsedEvent> parsed;
    std::string error;
    ASSERT_TRUE(ParseChromeTrace(json, &parsed, &error)) << error;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : writers) {
    th.join();
  }
  const std::string final_json = ChromeTraceJson(tracer.Snapshot());
  std::vector<ParsedEvent> parsed;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(final_json, &parsed, &error)) << error;
  EXPECT_FALSE(parsed.empty());
}

// Two per-process fixture traces for the merge tests: a "driver" whose epoch
// is 1000us into the cluster timeline and a "worker" at 1500us. One flow
// (span A) goes driver->worker, another (span B) worker->driver, and the
// worker also carries a local GC slice.
std::pair<std::string, std::string> MergeFixtureJsons() {
  const std::uint64_t trace = TraceIdFromSeed(11);
  const std::uint64_t span_a = SpanId(trace, 5, -1, 0, -1, 0, 0);
  const std::uint64_t span_b = SpanId(trace, 6, 0, -1, -1, 0, 0);

  Tracer driver;
  driver.EmitAt(2'000'000, EventKind::kMsgSend, 0, 0, span_a, 128, FlowAux(0, 5));
  driver.EmitAt(9'000'000, EventKind::kMsgRecv, 0, 0, span_b, 64, FlowAux(0, 6));
  TraceProcessMeta driver_meta;
  driver_meta.name = "driver";
  driver_meta.epoch_us = 1000;
  driver_meta.events_dropped = 1;

  Tracer worker;
  worker.EmitAt(3'000'000, EventKind::kMsgRecv, 0, 0, span_a, 128, FlowAux(-1, 5));
  worker.EmitAt(5'000'000, EventKind::kGc, 0, 1, 1 << 20, 2 << 20, /*aux=*/1500);
  worker.EmitAt(8'000'000, EventKind::kMsgSend, 0, 0, span_b, 64, FlowAux(-1, 6));
  TraceProcessMeta worker_meta;
  worker_meta.name = "worker";
  worker_meta.epoch_us = 1500;
  worker_meta.events_dropped = 2;

  return {ChromeTraceJson(driver.Snapshot(), &driver_meta),
          ChromeTraceJson(worker.Snapshot(), &worker_meta)};
}

TEST(TraceMergeTest, StitchesFilesAndCountsFlowPairs) {
  const auto [driver_json, worker_json] = MergeFixtureJsons();
  std::ostringstream merged;
  MergedTraceStats stats;
  std::string error;
  ASSERT_TRUE(MergeChromeTraces({driver_json, worker_json}, merged, &stats, &error))
      << error;
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.events, 5u);
  EXPECT_EQ(stats.flow_pairs, 2u);
  EXPECT_EQ(stats.cross_process_pairs, 2u);
  EXPECT_EQ(stats.unmatched_flows, 0u);
  EXPECT_EQ(stats.events_dropped, 3u);  // 1 (driver) + 2 (worker).

  // The merged file must round-trip through the same parser, carry the summed
  // drop count, and keep per-file pid lanes distinct.
  ParsedTrace trace;
  ASSERT_TRUE(ParseChromeTrace(merged.str(), &trace, &error)) << error;
  ASSERT_TRUE(trace.has_meta);
  EXPECT_EQ(trace.events_dropped, 3u);
  EXPECT_EQ(trace.epoch_us, 1000u);  // Earliest epoch wins.
  std::set<int> pids;
  for (const ParsedEvent& e : trace.events) {
    pids.insert(e.pid);
  }
  EXPECT_EQ(pids.count(0), 1u);                 // Driver lane.
  EXPECT_EQ(pids.count(kMergePidStride), 1u);   // Worker lane block.

  // Epoch alignment: the worker's recv at local 3ms sits at epoch 1500us, so
  // on the merged (driver-epoch) timeline it lands at 3ms + 500us.
  bool found_recv = false;
  for (const ParsedEvent& e : trace.events) {
    if (e.ph == "f" && e.pid >= kMergePidStride && e.a != 0 && e.ts_us < 4000.0) {
      EXPECT_NEAR(e.ts_us, 3500.0, 1e-6);
      found_recv = true;
    }
  }
  EXPECT_TRUE(found_recv);
}

TEST(TraceMergeTest, MergedTraceMatchesGoldenFile) {
  const auto [driver_json, worker_json] = MergeFixtureJsons();
  std::ostringstream merged;
  MergedTraceStats stats;
  std::string error;
  ASSERT_TRUE(MergeChromeTraces({driver_json, worker_json}, merged, &stats, &error))
      << error;
  const std::string golden_path =
      std::string(OBS_TEST_GOLDEN_DIR) + "/merged_trace_golden.json";
  if (std::getenv("OBS_TEST_REGEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << merged.str();
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (run with OBS_TEST_REGEN=1 to create)";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(merged.str(), ss.str())
      << "merged-trace output drifted from the golden file; verify in "
         "chrome://tracing, then OBS_TEST_REGEN=1";
}

TEST(TraceExportTest, MetaHeaderRoundTrips) {
  Tracer tracer;
  tracer.EmitAt(1'000'000, EventKind::kRuntimeStart, 0, 0);
  TraceProcessMeta meta;
  meta.name = "worker-3";
  meta.epoch_us = 777;
  meta.events_dropped = 12;
  const std::string json = ChromeTraceJson(tracer.Snapshot(), &meta);
  ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &trace, &error)) << error;
  ASSERT_TRUE(trace.has_meta);
  EXPECT_EQ(trace.process_name, "worker-3");
  EXPECT_EQ(trace.epoch_us, 777u);
  EXPECT_EQ(trace.events_dropped, 12u);
  ASSERT_EQ(trace.events.size(), 1u);  // Meta lines are not events.
}

TEST(FlightRecorderTest, TriggerDumpsRegisteredTracers) {
  // The singleton reads its knobs once, at first use — set them before any
  // Instance() call in this binary (no other obs test touches the recorder).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "itask_obs_fr_test").string();
  std::filesystem::remove_all(dir);
  ::setenv("ITASK_FLIGHT_RECORDER", "1", 1);
  ::setenv("ITASK_FLIGHT_RECORDER_DIR", dir.c_str(), 1);

  FlightRecorder& recorder = FlightRecorder::Instance();
  ASSERT_TRUE(recorder.armed());
  Tracer tracer;
  recorder.Register(&tracer, "unit test tracer");
  EXPECT_TRUE(tracer.enabled());  // Armed registration force-enables capture.
  tracer.Emit(EventKind::kOmeInterrupt, 0, 123);

  const std::string bundle = recorder.Trigger("unit-test");
  ASSERT_FALSE(bundle.empty());
  EXPECT_TRUE(std::filesystem::exists(bundle + "/MANIFEST.txt"));
  bool found_trace = false;
  for (const auto& entry : std::filesystem::directory_iterator(bundle)) {
    if (entry.path().extension() == ".json") {
      std::ifstream in(entry.path());
      std::ostringstream ss;
      ss << in.rdbuf();
      ParsedTrace trace;
      std::string error;
      ASSERT_TRUE(ParseChromeTrace(ss.str(), &trace, &error)) << error;
      found_trace = trace.has_meta || !trace.events.empty() || found_trace;
    }
  }
  EXPECT_TRUE(found_trace);
  EXPECT_GE(recorder.trigger_count(), 1u);
  recorder.Unregister(&tracer);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace itask::obs
