#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/blocking_queue.h"
#include "common/byte_buffer.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/spin.h"
#include "common/table_printer.h"

namespace itask::common {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SamplesWithinUniverse) {
  Rng rng(17);
  ZipfSampler zipf(1000, 1.0);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = zipf.Sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

TEST(ZipfTest, RankOneDominates) {
  Rng rng(17);
  ZipfSampler zipf(10'000, 1.0);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100'000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 1 should be the most frequent, and much more frequent than rank 100.
  int max_count = 0;
  std::uint64_t max_rank = 0;
  for (const auto& [rank, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  }
  EXPECT_EQ(max_rank, 1u);
  EXPECT_GT(counts[1], 10 * counts[100]);
}

class ZipfThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaTest, DistributionIsMonotoneInRankBuckets) {
  Rng rng(3);
  ZipfSampler zipf(1'000, GetParam());
  std::vector<int> bucket(3, 0);
  for (int i = 0; i < 50'000; ++i) {
    const auto k = zipf.Sample(rng);
    if (k <= 10) {
      ++bucket[0];
    } else if (k <= 100) {
      ++bucket[1];
    } else {
      ++bucket[2];
    }
  }
  // Per-rank density must decrease across buckets.
  const double d0 = bucket[0] / 10.0;
  const double d1 = bucket[1] / 90.0;
  const double d2 = bucket[2] / 900.0;
  EXPECT_GT(d0, d1);
  EXPECT_GT(d1, d2);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaTest, ::testing::Values(0.8, 0.99, 1.0, 1.2));

TEST(ByteBufferTest, AppendRead) {
  ByteBuffer buf;
  const int x = 42;
  const double y = 3.5;
  buf.Append(&x, sizeof(x));
  buf.Append(&y, sizeof(y));
  int rx = 0;
  double ry = 0;
  buf.Read(&rx, sizeof(rx));
  buf.Read(&ry, sizeof(ry));
  EXPECT_EQ(rx, 42);
  EXPECT_EQ(ry, 3.5);
  EXPECT_TRUE(buf.AtEnd());
}

TEST(ByteBufferTest, ReadPastEndThrows) {
  ByteBuffer buf;
  char c = 'a';
  buf.Append(&c, 1);
  char out[2];
  EXPECT_THROW(buf.Read(out, 2), std::out_of_range);
}

TEST(ByteBufferTest, ResetCursorAllowsRereading) {
  ByteBuffer buf;
  int x = 7;
  buf.Append(&x, sizeof(x));
  int out = 0;
  buf.Read(&out, sizeof(out));
  buf.ResetCursor();
  out = 0;
  buf.Read(&out, sizeof(out));
  EXPECT_EQ(out, 7);
}

TEST(BlockingQueueTest, PushPopOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.Push(5);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 5);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(6));
}

TEST(BlockingQueueTest, MultiThreadedTransfersAllItems) {
  BlockingQueue<int> q;
  constexpr int kItems = 10'000;
  std::set<int> received;
  std::mutex mu;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        std::lock_guard lock(mu);
        received.insert(*item);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int i = p; i < kItems; i += 2) {
        q.Push(i);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(received.size(), static_cast<std::size_t>(kItems));
}

TEST(SpinTest, SpinsForApproximateDuration) {
  Stopwatch watch;
  SpinFor(std::chrono::milliseconds(5));
  EXPECT_GE(watch.ElapsedMs(), 4.9);
  EXPECT_LT(watch.ElapsedMs(), 50.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Name", "Value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatMs(1500.0), "1.50s");
  EXPECT_EQ(FormatMs(12.3), "12.3ms");
  EXPECT_EQ(FormatPct(0.5), "50.0%");
  EXPECT_EQ(FormatRatio(2.0), "2.00x");
}

// ---- Strict env parsing (common/env.h) ----

TEST(EnvParseTest, ParseIntAcceptsWholeValuesOnly) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-7"), -7);
  EXPECT_EQ(ParseInt("  13  "), 13);
  EXPECT_FALSE(ParseInt(nullptr).has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("two").has_value());
  EXPECT_FALSE(ParseInt("12abc").has_value());  // atoi would read 12.
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("99999999999999999999999").has_value());  // ERANGE
}

TEST(EnvParseTest, ParseDoubleAcceptsWholeValuesOnly) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" 2e3 ").value(), 2000.0);
  EXPECT_FALSE(ParseDouble("fast").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(EnvParseTest, ParseBoolAcceptsCommonSpellings) {
  EXPECT_EQ(ParseBool("1"), true);
  EXPECT_EQ(ParseBool("true"), true);
  EXPECT_EQ(ParseBool("ON"), true);
  EXPECT_EQ(ParseBool("Yes"), true);
  EXPECT_EQ(ParseBool("0"), false);
  EXPECT_EQ(ParseBool("false"), false);
  EXPECT_EQ(ParseBool("off"), false);
  EXPECT_EQ(ParseBool("no"), false);
  EXPECT_FALSE(ParseBool("maybe").has_value());
  EXPECT_FALSE(ParseBool("2").has_value());
}

TEST(EnvParseTest, EnvHelpersFallBackOnGarbageAndUnset) {
  unsetenv("ITASK_TEST_ENV_KNOB");
  EXPECT_EQ(EnvInt("ITASK_TEST_ENV_KNOB", 5), 5);
  EXPECT_DOUBLE_EQ(EnvDouble("ITASK_TEST_ENV_KNOB", 2.5), 2.5);
  EXPECT_EQ(EnvBool("ITASK_TEST_ENV_KNOB", true), true);

  setenv("ITASK_TEST_ENV_KNOB", "not-a-number", 1);
  EXPECT_EQ(EnvInt("ITASK_TEST_ENV_KNOB", 5), 5);
  EXPECT_DOUBLE_EQ(EnvDouble("ITASK_TEST_ENV_KNOB", 2.5), 2.5);
  EXPECT_EQ(EnvU64("ITASK_TEST_ENV_KNOB", 9u), 9u);

  setenv("ITASK_TEST_ENV_KNOB", "17", 1);
  EXPECT_EQ(EnvInt("ITASK_TEST_ENV_KNOB", 5), 17);
  EXPECT_EQ(EnvU64("ITASK_TEST_ENV_KNOB", 9u), 17u);

  setenv("ITASK_TEST_ENV_KNOB", "-3", 1);
  // EnvU64 rejects negatives; EnvInt passes them through.
  EXPECT_EQ(EnvU64("ITASK_TEST_ENV_KNOB", 9u), 9u);
  EXPECT_EQ(EnvInt("ITASK_TEST_ENV_KNOB", 5), -3);

  setenv("ITASK_TEST_ENV_KNOB", "0", 1);
  // EnvPositiveDouble rejects non-positive values.
  EXPECT_DOUBLE_EQ(EnvPositiveDouble("ITASK_TEST_ENV_KNOB", 4.0), 4.0);
  setenv("ITASK_TEST_ENV_KNOB", "0.5", 1);
  EXPECT_DOUBLE_EQ(EnvPositiveDouble("ITASK_TEST_ENV_KNOB", 4.0), 0.5);

  setenv("ITASK_TEST_ENV_KNOB", "  ", 1);  // Whitespace-only = unset.
  EXPECT_EQ(EnvInt("ITASK_TEST_ENV_KNOB", 5), 5);
  unsetenv("ITASK_TEST_ENV_KNOB");
}

// ---- Unified retry/deadline policy (common/backoff.h) ----

TEST(BackoffTest, DelayIsDeterministicAndWithinJitterBounds) {
  BackoffPolicy policy;
  policy.base_ms = 2.0;
  policy.cap_ms = 64.0;
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double ms = BackoffDelayMs(policy, attempt, /*salt=*/42);
    // Pure function: same (policy, attempt, salt) -> same delay.
    EXPECT_DOUBLE_EQ(ms, BackoffDelayMs(policy, attempt, 42)) << attempt;
    // Within +/- jitter of the capped exponential.
    double nominal = policy.base_ms;
    for (int i = 1; i < attempt; ++i) {
      nominal = std::min(nominal * policy.multiplier, policy.cap_ms);
    }
    EXPECT_GE(ms, nominal * (1.0 - policy.jitter)) << attempt;
    EXPECT_LE(ms, nominal * (1.0 + policy.jitter)) << attempt;
  }
  // Late attempts saturate at the cap (modulo jitter), never beyond.
  EXPECT_LE(BackoffDelayMs(policy, 50, 42), policy.cap_ms * (1.0 + policy.jitter));
}

TEST(BackoffTest, ZeroJitterFollowsExactExponential) {
  BackoffPolicy policy;
  policy.base_ms = 1.0;
  policy.cap_ms = 8.0;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, 0), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 3, 0), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 4, 0), 8.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 9, 0), 8.0);  // Capped.
}

TEST(BackoffTest, SaltsDecorrelateJitterStreams) {
  BackoffPolicy policy;  // Default 25% jitter.
  int differing = 0;
  for (int attempt = 1; attempt <= 20; ++attempt) {
    if (BackoffDelayMs(policy, attempt, 1) != BackoffDelayMs(policy, attempt, 2)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);  // Two salts share at most a few collisions.
}

TEST(BackoffTest, SessionExhaustsAfterMaxAttemptsWithSingleGiveup) {
  const auto use = static_cast<int>(BackoffUse::kSendRetry);
  const BackoffRegistry::Snapshot before = BackoffRegistry::Instance().snapshot();
  BackoffPolicy policy;
  policy.base_ms = 0.01;
  policy.cap_ms = 0.02;
  policy.jitter = 0.0;
  policy.max_attempts = 3;
  Backoff session(BackoffUse::kSendRetry, policy, /*salt=*/7);
  double ms = 0.0;
  EXPECT_TRUE(session.Next(&ms));
  EXPECT_TRUE(session.Next(&ms));
  EXPECT_TRUE(session.Next(&ms));
  EXPECT_EQ(session.attempts(), 3);
  // Exhausted: false now and forever, but the giveup is counted exactly once.
  EXPECT_FALSE(session.Next(&ms));
  EXPECT_FALSE(session.Next(&ms));
  const BackoffRegistry::Snapshot after = BackoffRegistry::Instance().snapshot();
  EXPECT_EQ(after.retries[use] - before.retries[use], 3u);
  EXPECT_EQ(after.giveups[use] - before.giveups[use], 1u);
  EXPECT_GE(after.total_retries(), before.total_retries() + 3);
}

TEST(BackoffTest, DeadlineBudgetExpiresAndEndsTheSession) {
  const Deadline unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_FALSE(unlimited.Expired());

  Deadline tight(3.0);
  EXPECT_FALSE(tight.unlimited());
  EXPECT_LE(tight.RemainingMs(), 3.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(tight.Expired());
  EXPECT_DOUBLE_EQ(tight.RemainingMs(), 0.0);

  // A session under a blown deadline gives up even with unlimited attempts.
  BackoffPolicy policy;
  policy.base_ms = 0.01;
  policy.max_attempts = -1;
  policy.deadline_ms = 2.0;
  Backoff session(BackoffUse::kLoadRetry, policy, /*salt=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(4));
  double ms = 0.0;
  EXPECT_FALSE(session.Next(&ms));
}

TEST(BackoffTest, PolicyFromEnvOverridesEachKnob) {
  setenv("ITASK_TEST_BACKOFF_BASE_MS", "9.5", 1);
  setenv("ITASK_TEST_BACKOFF_CAP_MS", "77", 1);
  setenv("ITASK_TEST_BACKOFF_ATTEMPTS", "11", 1);
  setenv("ITASK_TEST_BACKOFF_DEADLINE_MS", "1234", 1);
  const BackoffPolicy p = BackoffPolicy::FromEnv("ITASK_TEST_BACKOFF", BackoffPolicy{});
  EXPECT_DOUBLE_EQ(p.base_ms, 9.5);
  EXPECT_DOUBLE_EQ(p.cap_ms, 77.0);
  EXPECT_EQ(p.max_attempts, 11);
  EXPECT_DOUBLE_EQ(p.deadline_ms, 1234.0);
  unsetenv("ITASK_TEST_BACKOFF_BASE_MS");
  unsetenv("ITASK_TEST_BACKOFF_CAP_MS");
  unsetenv("ITASK_TEST_BACKOFF_ATTEMPTS");
  unsetenv("ITASK_TEST_BACKOFF_DEADLINE_MS");
  // Absent env: the base policy passes through untouched.
  const BackoffPolicy untouched =
      BackoffPolicy::FromEnv("ITASK_TEST_BACKOFF", BackoffPolicy{});
  EXPECT_DOUBLE_EQ(untouched.base_ms, BackoffPolicy{}.base_ms);
  EXPECT_EQ(untouched.max_attempts, BackoffPolicy{}.max_attempts);
}

}  // namespace
}  // namespace itask::common
