// Tests of the Hadoop-flavored MapReduce facade (paper §4.2): the classic
// Mapper/Reducer pair runs as ITasks, survives pressured heaps, and produces
// the same result as a direct sequential computation.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <sstream>

#include "mapreduce/mapreduce.h"
#include "workloads/text.h"

namespace itask::mapreduce {
namespace {

struct DocTraits {
  using Tuple = std::string;
  static std::uint64_t SizeOf(const Tuple& t) { return t.size() + 48; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteString(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadString(); }
};

struct WordCountKv {
  using InTraits = DocTraits;
  using Key = std::string;
  using Value = std::uint64_t;
  static std::uint64_t EntryOverhead() { return 48; }
  static std::uint64_t KeyBytes(const Key& k) { return k.size(); }
  static std::uint64_t ValueBytes(const Value&) { return 8; }
  static void WriteEntry(serde::Writer& w, const Key& k, const Value& v) {
    w.WriteString(k);
    w.WriteVarint(v);
  }
  static std::pair<Key, Value> ReadEntry(serde::Reader& r) {
    Key k = r.ReadString();
    Value v = r.ReadVarint();
    return {std::move(k), v};
  }
  static std::uint64_t HashKey(const Key& k) {
    return apps::HashString(k);
  }
};

class WordCountMapper : public Mapper<WordCountKv> {
 public:
  void Map(const std::string& doc, Emitter& emit, memsim::ManagedHeap& /*heap*/) override {
    std::istringstream stream(doc);
    std::string word;
    while (stream >> word) {
      emit.Emit(word, 1);
    }
  }
};

class SumReducer : public Reducer<WordCountKv> {
 public:
  std::int64_t Reduce(const std::string& /*key*/, std::uint64_t& into,
                      const std::uint64_t& from) override {
    into += from;
    return 0;
  }
};

std::map<std::string, std::uint64_t> RunJob(std::uint64_t heap_bytes, std::uint64_t corpus_bytes,
                                            bool* ok_out = nullptr) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = heap_bytes;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  MapReduceConfig config;
  config.max_workers_per_node = 4;
  config.split_bytes = 32 << 10;
  MapReduceJob<WordCountKv> job(cl, "mrtest", config);
  job.SetMapper([] { return std::make_unique<WordCountMapper>(); });
  job.SetReducer([] { return std::make_unique<SumReducer>(); });

  std::map<std::string, std::uint64_t> counts;
  std::mutex mu;
  job.SetResultHandler([&](const std::string& word, const std::uint64_t& n) {
    std::lock_guard lock(mu);
    counts[word] += n;
  });

  workloads::TextConfig tc;
  tc.target_bytes = corpus_bytes;
  tc.vocabulary = 1'500;
  const auto metrics = job.Run([&](const std::function<void(std::string, std::uint64_t)>& push) {
    workloads::ForEachDocument(tc, [&](const std::string& doc) {
      push(doc, DocTraits::SizeOf(doc));
    });
  });
  if (ok_out != nullptr) {
    *ok_out = metrics.succeeded;
  }
  return counts;
}

std::map<std::string, std::uint64_t> Reference(std::uint64_t corpus_bytes) {
  workloads::TextConfig tc;
  tc.target_bytes = corpus_bytes;
  tc.vocabulary = 1'500;
  std::map<std::string, std::uint64_t> counts;
  workloads::ForEachDocument(tc, [&](const std::string& doc) {
    std::istringstream stream(doc);
    std::string word;
    while (stream >> word) {
      ++counts[word];
    }
  });
  return counts;
}

TEST(MapReduceTest, WordCountMatchesReference) {
  bool ok = false;
  const auto counts = RunJob(64 << 20, 256 << 10, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(counts, Reference(256 << 10));
}

TEST(MapReduceTest, SurvivesPressuredHeapWithSameResult) {
  bool ok = false;
  const auto counts = RunJob(1 << 20, 512 << 10, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(counts, Reference(512 << 10));
}

TEST(MapReduceTest, EachKeyReportedExactlyOnce) {
  // The per-channel MITask emits a key only from its Cleanup, so the result
  // handler must never see a key twice (per channel).
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 8 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  MapReduceConfig config;
  MapReduceJob<WordCountKv> job(cl, "mrdup", config);
  job.SetMapper([] { return std::make_unique<WordCountMapper>(); });
  job.SetReducer([] { return std::make_unique<SumReducer>(); });

  std::map<std::string, int> seen;
  std::mutex mu;
  job.SetResultHandler([&](const std::string& word, const std::uint64_t&) {
    std::lock_guard lock(mu);
    ++seen[word];
  });
  const auto metrics = job.Run([&](const std::function<void(std::string, std::uint64_t)>& push) {
    for (int i = 0; i < 1'000; ++i) {
      push("alpha beta gamma", 64);
    }
  });
  ASSERT_TRUE(metrics.succeeded);
  ASSERT_EQ(seen.size(), 3u);
  for (const auto& [word, times] : seen) {
    EXPECT_EQ(times, 1) << word;
  }
}

}  // namespace
}  // namespace itask::mapreduce
