// Node-failure recovery tests (DESIGN.md §11): heartbeat detection, lineage
// re-execution, shuffle redelivery, graceful OOM degradation, and the
// exactly-once dedup audit. The end-to-end tests assert the strongest
// property the subsystem offers: a job that loses a node mid-flight produces
// the *identical* result fingerprint as a fault-free run, with zero
// duplicates observed by the ledger's dedup counter.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "apps/hyracks_apps.h"
#include "cluster/failure_model.h"
#include "itask/membership.h"
#include "itask/recovery.h"
#include "itask/typed_partition.h"

namespace itask::apps {
namespace {

cluster::Cluster MakeCluster(std::uint64_t heap_bytes, int nodes = 4) {
  cluster::ClusterConfig cc;
  cc.num_nodes = nodes;
  cc.heap.capacity_bytes = heap_bytes;
  cc.heap.real_pauses = false;
  return cluster::Cluster(cc);
}

AppConfig FtConfig() {
  AppConfig config;
  config.dataset_bytes = 512 << 10;
  config.tpch_scale = 0.2;
  config.threads = 4;
  config.max_workers = 4;
  config.granularity_bytes = 8 << 10;
  config.fault_tolerance = true;
  return config;
}

// Shrinks the failure-detector timeouts so a kill is declared dead in tens of
// milliseconds instead of the production default.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("ITASK_HEARTBEAT_MS", "1", 1);
    setenv("ITASK_SUSPECT_TIMEOUT_MS", "25", 1);
  }
  void TearDown() override {
    unsetenv("ITASK_HEARTBEAT_MS");
    unsetenv("ITASK_SUSPECT_TIMEOUT_MS");
  }
};

AppResult RunFt(const char* app, const AppConfig& config,
                cluster::FailureModel* model = nullptr) {
  auto cluster = MakeCluster(48 << 20, 4);
  AppConfig cfg = config;
  cfg.failure_model = model;
  return RunHyracksApp(app, cluster, cfg, Mode::kITask);
}

// ---- Fault-free equivalence: FT routing must not change results ----

TEST_F(RecoveryTest, FaultFreeFtMatchesNonFt) {
  for (const char* app : {"WC", "HS", "HJ"}) {
    AppConfig base = FtConfig();
    base.fault_tolerance = false;
    const AppResult plain = RunFt(app, base);
    ASSERT_TRUE(plain.metrics.succeeded) << app;
    ASSERT_GT(plain.records, 0u) << app;

    const AppResult ft = RunFt(app, FtConfig());
    ASSERT_TRUE(ft.metrics.succeeded) << app;
    EXPECT_EQ(ft.checksum, plain.checksum) << app;
    EXPECT_EQ(ft.records, plain.records) << app;
    EXPECT_EQ(ft.metrics.nodes_failed, 0u) << app;
    EXPECT_EQ(ft.metrics.splits_reexecuted, 0u) << app;
    EXPECT_EQ(ft.metrics.duplicate_tuples_dropped, 0u) << app;
  }
}

// ---- Tentpole: killing any single node preserves the fingerprint ----

class KillNodeTest : public RecoveryTest,
                     public ::testing::WithParamInterface<const char*> {};

TEST_P(KillNodeTest, KilledNodeRecoversWithIdenticalFingerprint) {
  const char* app = GetParam();
  const AppResult reference = RunFt(app, FtConfig());
  ASSERT_TRUE(reference.metrics.succeeded);
  ASSERT_GT(reference.records, 0u);

  for (int victim : {0, 1, 3}) {
    cluster::FailureModel model;
    model.ScheduleKill(victim, 2.0);
    const AppResult faulted = RunFt(app, FtConfig(), &model);
    ASSERT_TRUE(faulted.metrics.succeeded)
        << app << " kill node " << victim << ": " << faulted.metrics.Summary();
    EXPECT_EQ(faulted.checksum, reference.checksum) << app << " kill node " << victim;
    EXPECT_EQ(faulted.records, reference.records) << app << " kill node " << victim;
    // The dedup audit counter: exactly-once delivery held.
    EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u)
        << app << " kill node " << victim;
    EXPECT_GE(faulted.metrics.nodes_failed, 1u) << app << " kill node " << victim;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, KillNodeTest, ::testing::Values("WC", "HS", "HJ"));

// ---- Graceful degradation: escaped OME demotes to draining ----

TEST_F(RecoveryTest, OomPoisonedNodeDrainsAndJobCompletes) {
  const AppResult reference = RunFt("WC", FtConfig());
  ASSERT_TRUE(reference.metrics.succeeded);

  cluster::FailureModel model;
  model.SchedulePoison(2, 1.0);
  const AppResult faulted = RunFt("WC", FtConfig(), &model);
  ASSERT_TRUE(faulted.metrics.succeeded) << faulted.metrics.Summary();
  EXPECT_EQ(faulted.checksum, reference.checksum);
  EXPECT_EQ(faulted.records, reference.records);
  EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u);
  // The poisoned node left the serving set one way or the other: demoted to
  // draining by the escaped-OME path, or declared dead if its monitor died.
  EXPECT_GE(faulted.metrics.nodes_draining + faulted.metrics.nodes_failed, 1u);
}

// ---- Zombie: a hung node is declared dead; its late work is fenced ----

TEST_F(RecoveryTest, HangedNodeIsDetectedAndFenced) {
  const AppResult reference = RunFt("WC", FtConfig());
  ASSERT_TRUE(reference.metrics.succeeded);

  cluster::FailureModel model;
  // Age the zombie's last beat past the dead timeout so detection fires on
  // the next poll tick deterministically — without this, a fast job completes
  // before the wall-clock silence accumulates and nodes_failed stays 0.
  model.ScheduleHang(1, 2.0, /*silence_age_ms=*/10000.0);
  const AppResult faulted = RunFt("WC", FtConfig(), &model);
  ASSERT_TRUE(faulted.metrics.succeeded) << faulted.metrics.Summary();
  EXPECT_EQ(faulted.checksum, reference.checksum);
  EXPECT_EQ(faulted.records, reference.records);
  EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u);
  EXPECT_GE(faulted.metrics.nodes_failed, 1u);
}

// ---- Disconnects: transient cuts must not be conflated with death ----

TEST_F(RecoveryTest, HealedDisconnectCausesNoReexecution) {
  // Grace far past this fixture's dead timeout: only an unhealed cut dies.
  setenv("ITASK_DISCONNECT_GRACE_MS", "60000", 1);
  const AppResult reference = RunFt("WC", FtConfig());
  ASSERT_TRUE(reference.metrics.succeeded);

  cluster::FailureModel model;
  model.ScheduleDisconnect(1, 2.0);
  model.ScheduleHeal(1, 12.0);
  const AppResult faulted = RunFt("WC", FtConfig(), &model);
  unsetenv("ITASK_DISCONNECT_GRACE_MS");
  ASSERT_TRUE(faulted.metrics.succeeded) << faulted.metrics.Summary();
  EXPECT_EQ(faulted.checksum, reference.checksum);
  EXPECT_EQ(faulted.records, reference.records);
  // The whole point of kDisconnected: a cut that heals re-executes nothing
  // and kills nobody.
  EXPECT_EQ(faulted.metrics.splits_reexecuted, 0u);
  EXPECT_EQ(faulted.metrics.nodes_failed, 0u);
  EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u);
  EXPECT_GE(faulted.metrics.partitions_healed, 1u);
}

TEST_F(RecoveryTest, UnhealedDisconnectExpiresGraceAndPromotesToDead) {
  // Tight grace so the expiry fires well inside the job.
  setenv("ITASK_DISCONNECT_GRACE_MS", "40", 1);
  const AppResult reference = RunFt("WC", FtConfig());
  ASSERT_TRUE(reference.metrics.succeeded);

  cluster::FailureModel model;
  // Never heals; age the beat past the grace so expiry doesn't race a fast
  // job (same determinism trick as HangedNodeIsDetectedAndFenced).
  model.ScheduleDisconnect(2, 2.0, /*silence_age_ms=*/10000.0);
  const AppResult faulted = RunFt("WC", FtConfig(), &model);
  unsetenv("ITASK_DISCONNECT_GRACE_MS");
  ASSERT_TRUE(faulted.metrics.succeeded) << faulted.metrics.Summary();
  EXPECT_EQ(faulted.checksum, reference.checksum);
  EXPECT_EQ(faulted.records, reference.records);
  EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u);
  EXPECT_GE(faulted.metrics.nodes_failed, 1u);  // Grace expired -> dead.
  EXPECT_EQ(faulted.metrics.partitions_healed, 0u);
}

}  // namespace
}  // namespace itask::apps

// ---- Membership unit tests (successor remapping) ----

namespace itask::core {
namespace {

TEST(MembershipTest, EffectiveOwnerMovesOnlyTheDeadNodesKeys) {
  Membership m(4);
  for (int h = 0; h < 4; ++h) {
    EXPECT_EQ(m.EffectiveOwner(h), h);
  }
  m.SetState(2, NodeLiveness::kDead);
  // Only the dead node's range moves — to its successor.
  EXPECT_EQ(m.EffectiveOwner(0), 0);
  EXPECT_EQ(m.EffectiveOwner(1), 1);
  EXPECT_EQ(m.EffectiveOwner(2), 3);
  EXPECT_EQ(m.EffectiveOwner(3), 3);
  // A second death walks past both, wrapping around.
  m.SetState(3, NodeLiveness::kDead);
  EXPECT_EQ(m.EffectiveOwner(2), 0);
  EXPECT_EQ(m.EffectiveOwner(3), 0);
  EXPECT_EQ(m.EffectiveOwner(0), 0);
  EXPECT_EQ(m.EffectiveOwner(1), 1);
  EXPECT_EQ(m.ServingCount(), 2);
}

TEST(MembershipTest, DisconnectedNodeKeepsServingAndHealNeedsAFreshBeat) {
  Membership m(3);
  m.NoteDisconnected(1);
  EXPECT_EQ(m.state(1), NodeLiveness::kDisconnected);
  // Mid-partition the node still owns its key range — remapping it would
  // redeliver its shuffle data even though it comes back intact.
  EXPECT_TRUE(m.Serving(1));
  EXPECT_EQ(m.EffectiveOwner(1), 1);
  EXPECT_EQ(m.ServingCount(), 3);
  // The pre-cut beat (stamped at construction) must not read as a heal:
  // only a beat that *postdates* the disconnect mark counts.
  EXPECT_FALSE(m.BeatSinceDisconnect(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  m.Beat(1);
  EXPECT_TRUE(m.BeatSinceDisconnect(1));
}

TEST(MembershipTest, SuppressedBeatsNeverReadAsAHeal) {
  Membership m(2);
  m.SuppressBeats(0, true);
  m.NoteDisconnected(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  m.Beat(0);  // Dropped: the link is down.
  EXPECT_FALSE(m.BeatSinceDisconnect(0));
  m.SuppressBeats(0, false);
  m.Beat(0);
  EXPECT_TRUE(m.BeatSinceDisconnect(0));
}

TEST(MembershipTest, DrainingStopsServingButDemotionNeedsSurvivors) {
  Membership m(2);
  EXPECT_TRUE(m.TryDemoteToDraining(0));
  EXPECT_FALSE(m.Serving(0));
  EXPECT_EQ(m.EffectiveOwner(0), 1);
  // The last serving node may not drain — someone must finish the job.
  EXPECT_FALSE(m.TryDemoteToDraining(1));
  EXPECT_TRUE(m.Serving(1));
}

// ---- RecoveryContext unit tests: ledger fencing and dedup ----

struct U64Traits {
  using Tuple = std::uint64_t;
  static std::uint64_t SizeOf(const Tuple&) { return 16; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteVarint(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadVarint(); }
};
using U64Partition = VectorPartition<U64Traits>;

memsim::HeapConfig FastHeap() {
  memsim::HeapConfig config;
  config.capacity_bytes = 16 << 20;
  config.real_pauses = false;
  return config;
}

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest()
      : heap0_(FastHeap()),
        heap1_(FastHeap()),
        spill_(std::filesystem::temp_directory_path(), "recovery-ledger"),
        rec_(RecoveryConfig{}, 2) {
    type_ = TypeIds::Get("recovery.test.u64");
    rec_.RegisterFactory(type_, [this](memsim::ManagedHeap* heap, serde::SpillManager* spill) {
      return std::make_shared<U64Partition>(type_, heap, spill);
    });
    for (int n = 0; n < 2; ++n) {
      RecoveryNodeHooks hooks;
      hooks.heap = n == 0 ? &heap0_ : &heap1_;
      hooks.spill = &spill_;
      hooks.push = [this, n](PartitionPtr dp) { pushed_[n].push_back(std::move(dp)); };
      rec_.SetNodeHooks(n, std::move(hooks));
      rec_.SetNodeSink(n, [this, n](PartitionPtr dp) { sunk_[n].push_back(std::move(dp)); });
    }
  }

  std::shared_ptr<U64Partition> MakePartition(int node, Tag tag,
                                              std::initializer_list<std::uint64_t> vals) {
    auto p = std::make_shared<U64Partition>(type_, node == 0 ? &heap0_ : &heap1_, &spill_);
    p->set_tag(tag);
    for (std::uint64_t v : vals) {
      p->Append(v);
    }
    return p;
  }

  TypeId type_ = 0;
  memsim::ManagedHeap heap0_;
  memsim::ManagedHeap heap1_;
  serde::SpillManager spill_;
  RecoveryContext rec_;
  std::vector<PartitionPtr> pushed_[2];
  std::vector<PartitionPtr> sunk_[2];
};

TEST_F(LedgerTest, StagedEntriesDeliverOnceOnCommit) {
  auto split = MakePartition(0, kNoTag, {1, 2, 3});
  const std::int64_t id = rec_.RegisterSplit(*split, 0);
  EXPECT_FALSE(rec_.MergeSafe());  // Uncommitted split gates the merges.

  auto out = MakePartition(0, /*tag=*/1, {10, 20});
  out->set_origin(id, 0);
  ASSERT_TRUE(rec_.StageShuffle(/*producer=*/0, /*home=*/1, out));
  EXPECT_EQ(rec_.stats().entries_staged, 1u);
  ASSERT_TRUE(pushed_[1].empty());  // Staged, not delivered, until commit.

  rec_.CommitEpoch(/*producer=*/0, id, /*epoch=*/0);
  ASSERT_EQ(pushed_[1].size(), 1u);  // Delivered to the home node exactly once.
  EXPECT_TRUE(rec_.MergeSafe());
  EXPECT_EQ(rec_.stats().duplicates_dropped, 0u);

  // Owner completes the merge: staged sink chunks replay into the real sink
  // and the tag's ledger entries are released.
  auto chunk = MakePartition(1, /*tag=*/1, {30});
  ASSERT_TRUE(rec_.StageSinkChunk(1, chunk));
  ASSERT_TRUE(sunk_[1].empty());
  rec_.CommitSink(1, /*tag=*/1);
  ASSERT_EQ(sunk_[1].size(), 1u);
  EXPECT_TRUE(rec_.AllComplete());
}

TEST_F(LedgerTest, DeadProducerIsFencedAndSplitReexecutes) {
  auto split = MakePartition(0, kNoTag, {1, 2, 3});
  const std::int64_t id = rec_.RegisterSplit(*split, 0);

  // Node 0 dies before committing: its stage attempts are rejected and the
  // split re-executes on the survivor under a bumped epoch.
  rec_.membership().SetState(0, NodeLiveness::kDead);
  auto out = MakePartition(0, /*tag=*/1, {10});
  out->set_origin(id, 0);
  EXPECT_FALSE(rec_.StageShuffle(0, 1, out));
  EXPECT_EQ(rec_.stats().fenced_rejects, 1u);

  rec_.OnNodeLost(0);
  ASSERT_EQ(pushed_[1].size(), 1u);  // The re-executed split, on node 1.
  EXPECT_EQ(pushed_[1][0]->origin_split(), id);
  EXPECT_EQ(pushed_[1][0]->origin_epoch(), 1u);
  EXPECT_EQ(rec_.stats().splits_reexecuted, 1u);

  // A zombie commit under the old epoch is stale; the new epoch commits.
  rec_.CommitEpoch(0, id, 0);
  EXPECT_EQ(rec_.stats().stale_commits, 1u);
  EXPECT_FALSE(rec_.MergeSafe());
  rec_.CommitEpoch(1, id, 1);
  EXPECT_TRUE(rec_.MergeSafe());
}

TEST_F(LedgerTest, OwnerDeathRedeliversCommittedEntriesWithoutDuplicates) {
  auto split = MakePartition(0, kNoTag, {1});
  const std::int64_t id = rec_.RegisterSplit(*split, 0);
  auto out = MakePartition(0, /*tag=*/1, {10, 20});
  out->set_origin(id, 0);
  ASSERT_TRUE(rec_.StageShuffle(0, 1, out));
  rec_.CommitEpoch(0, id, 0);
  ASSERT_EQ(pushed_[1].size(), 1u);

  // The owner dies after delivery but before sinking tag 1: the committed
  // entry re-delivers to the survivor — no producer re-execution needed.
  rec_.membership().SetState(1, NodeLiveness::kDead);
  rec_.OnNodeLost(1);
  ASSERT_EQ(pushed_[0].size(), 1u);
  EXPECT_EQ(rec_.stats().redeliveries, 1u);
  EXPECT_EQ(rec_.stats().splits_reexecuted, 0u);
  EXPECT_EQ(rec_.stats().duplicates_dropped, 0u);

  // Node 0 finishes the merge; a late redelivery to the sunk tag is refused.
  rec_.CommitSink(0, 1);
  EXPECT_TRUE(rec_.AllComplete());
}

TEST_F(LedgerTest, SunkTagRefusesLateChunks) {
  auto chunk = MakePartition(0, /*tag=*/7, {1});
  ASSERT_TRUE(rec_.StageSinkChunk(0, chunk));
  rec_.CommitSink(0, 7);
  ASSERT_EQ(sunk_[0].size(), 1u);
  auto late = MakePartition(0, /*tag=*/7, {2});
  EXPECT_FALSE(rec_.StageSinkChunk(0, late));
  EXPECT_EQ(sunk_[0].size(), 1u);
}

}  // namespace
}  // namespace itask::core

// ---- Satellite: ITASK_IO_FAIL_READ_P must reach the spill Load path ----

namespace itask::cluster {
namespace {

TEST(IoFailEnvTest, ReadFailureEnvInjectsOnLoadPath) {
  setenv("ITASK_IO_FAIL_READ_P", "1.0", 1);
  setenv("ITASK_IO_POOL", "0", 1);  // Synchronous I/O: failure surfaces inline.
  {
    ClusterConfig cc;
    cc.num_nodes = 1;
    cc.heap.real_pauses = false;
    Cluster cluster(cc);
    auto& spill = cluster.node(0).spill();
    common::ByteBuffer payload(std::vector<std::uint8_t>(1024, 0xab));
    const auto id = spill.Spill(payload);
    cluster.node(0).async_spill().Drain();
    EXPECT_THROW(spill.LoadAndRemove(id), std::runtime_error);
    EXPECT_GE(cluster.node(0).async_spill().Stats().injected_failures, 1u);
  }
  unsetenv("ITASK_IO_FAIL_READ_P");
  unsetenv("ITASK_IO_POOL");
}

}  // namespace
}  // namespace itask::cluster
