// Chaos-harness tests: fault-plan determinism, fuzzer stream reproducibility,
// and named regression seeds for bugs the schedule-fuzzing sweep surfaced.
// Each regression seed replays the exact fault plan `chaos_run` reported as
// the first failing seed before the corresponding fix landed.
#include <gtest/gtest.h>

#include <string>

#include "apps/hyracks_apps.h"
#include "chaos/chaos.h"
#include "cluster/cluster.h"

namespace itask::chaos {
namespace {

apps::AppConfig TinyAppConfig() {
  apps::AppConfig config;
  config.dataset_bytes = 256 << 10;
  config.tpch_scale = 0.2;
  config.max_workers = 4;
  config.granularity_bytes = 16 << 10;
  config.deadline_ms = 60'000.0;  // Turns a live-lock into a test failure.
  return config;
}

// Fault-free, pressure-free run: the result-fingerprint oracle.
apps::AppResult RunClean(const std::string& app) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = 64 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);
  return apps::RunHyracksApp(app, cl, TinyAppConfig(), apps::Mode::kITask);
}

// Replays one chaos_run sweep cell: derive the seed's fault plan, build the
// tiny pressured cluster with its spill-write faults wired in, and run the
// app under the installed schedule fuzzer with job-end auditing on.
apps::AppResult RunUnderSeed(const std::string& app, std::uint64_t seed) {
  const FaultPlan plan = FaultPlan::FromSeed(seed);
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = 1536 << 10;  // Small enough to force interrupts.
  cc.heap.real_pauses = false;
  cc.io.failure.write_probability = plan.spill_write_fail_p;
  cc.io.failure.seed = plan.spill_fail_seed;
  cluster::Cluster cl(cc);

  SetAuditEnabled(true);
  ScheduleFuzzer fuzzer(plan.fuzz);
  Install(&fuzzer);
  apps::AppResult result = apps::RunHyracksApp(app, cl, TinyAppConfig(), apps::Mode::kITask);
  Uninstall();
  return result;
}

void ExpectCleanRun(const apps::AppResult& result, const apps::AppResult& reference,
                    std::uint64_t seed) {
  EXPECT_TRUE(result.metrics.succeeded) << "seed " << seed << ": "
                                        << result.metrics.Summary();
  EXPECT_TRUE(result.audit_violations.empty())
      << "seed " << seed << ": " << result.audit_violations.front();
  const auto in_path = DrainViolations();
  EXPECT_TRUE(in_path.empty()) << "seed " << seed << ": " << in_path.front();
  if (result.metrics.succeeded) {
    EXPECT_EQ(result.checksum, reference.checksum) << "seed " << seed;
    EXPECT_EQ(result.records, reference.records) << "seed " << seed;
  }
}

TEST(FaultPlanTest, DerivationIsDeterministic) {
  const FaultPlan a = FaultPlan::FromSeed(99);
  const FaultPlan b = FaultPlan::FromSeed(99);
  EXPECT_EQ(a.Describe(), b.Describe());
  EXPECT_EQ(a.fuzz.seed, b.fuzz.seed);
  EXPECT_NE(FaultPlan::FromSeed(1).Describe(), FaultPlan::FromSeed(2).Describe());
}

TEST(ScheduleFuzzerTest, FaultDrawsReplayAcrossInstances) {
  FuzzConfig fc;
  fc.seed = 7;
  fc.shuffle_delay_p = 0.5;
  fc.forced_ome_p = 0.5;
  std::vector<std::uint64_t> first;
  {
    ScheduleFuzzer fz(fc);
    Install(&fz);
    for (int i = 0; i < 64; ++i) {
      first.push_back(fz.DrawShuffleDelayUs());
      first.push_back(fz.DrawForcedOme() ? 1 : 0);
    }
    Uninstall();
  }
  std::vector<std::uint64_t> second;
  {
    ScheduleFuzzer fz(fc);
    Install(&fz);
    for (int i = 0; i < 64; ++i) {
      second.push_back(fz.DrawShuffleDelayUs());
      second.push_back(fz.DrawForcedOme() ? 1 : 0);
    }
    Uninstall();
  }
  EXPECT_EQ(first, second);
}

TEST(ChaosPointTest, NoOpWhenNoFuzzerInstalled) {
  // The macro must be safe (and cheap) on every hot path when idle.
  CHAOS_POINT("test.idle");
  ScheduleFuzzer fz(FuzzConfig{});
  Install(&fz);
  CHAOS_POINT("test.active");
  Uninstall();
  EXPECT_EQ(fz.points_hit(), 1u);
  CHAOS_POINT("test.idle.again");
  EXPECT_EQ(fz.points_hit(), 1u);
}

// Seed 13's plan injects ~5% spill-write failures. Before the partition-load
// retry fix, every app aborted under it: AsyncSpillManager surfaces a failed
// background write exactly once at load time (keeping the payload in the
// pending-write cache so a retry succeeds from memory), but
// DataPartition::EnsureResident treated that one-shot error as fatal and the
// worker's exception took the whole job down — with zero data actually lost.
TEST(ChaosRegressionTest, Seed13SpillWriteFaultIsRecoverableWordCount) {
  const apps::AppResult reference = RunClean("WC");
  ASSERT_TRUE(reference.metrics.succeeded);
  ExpectCleanRun(RunUnderSeed("WC", 13), reference, 13);
}

// Seed 29: same root cause, independently derived fault plan, exercised on
// HeapSort whose merge phase reloads far more spilled partitions.
TEST(ChaosRegressionTest, Seed29SpillWriteFaultIsRecoverableHeapSort) {
  const apps::AppResult reference = RunClean("HS");
  ASSERT_TRUE(reference.metrics.succeeded);
  ExpectCleanRun(RunUnderSeed("HS", 29), reference, 29);
}

// A slice of the full sweep cheap enough for every CI run; the 256-seed
// version lives in ci.sh's chaos tier and tools/chaos_run.
TEST(ChaosSweepTest, FirstEightSeedsRunCleanOnWordCount) {
  const apps::AppResult reference = RunClean("WC");
  ASSERT_TRUE(reference.metrics.succeeded);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExpectCleanRun(RunUnderSeed("WC", seed), reference, seed);
  }
}

}  // namespace
}  // namespace itask::chaos
