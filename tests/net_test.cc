// src/net/ tests (DESIGN.md §13): message codec, stream framing under
// adversarial read boundaries, socketpair round-trips, transport backends,
// the control plane, and the headline end-to-end property — WC/HS/HJ over a
// TCP loopback shuffle reproduce the inproc fingerprints bit-for-bit, with
// and without node faults.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/hyracks_apps.h"
#include "cluster/failure_model.h"
#include "io/frame_codec.h"
#include "net/ctrl.h"
#include "net/fault_engine.h"
#include "net/frame_socket.h"
#include "net/job_wire.h"
#include "net/message.h"
#include "net/metrics_wire.h"
#include "net/transport.h"
#include "obs/event.h"
#include "obs/histogram.h"

namespace itask::net {
namespace {

common::ByteBuffer MakePayload(std::size_t n, std::uint8_t seed) {
  common::ByteBuffer buf;
  buf.bytes().resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf.bytes()[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return buf;
}

// One frame's wire bytes: [u32 LE length][FrameCodec frame].
std::vector<std::uint8_t> WireFrame(const common::ByteBuffer& payload) {
  common::ByteBuffer framed;
  io::FrameCodec::Encode(payload, &framed, /*compression=*/false);
  const auto len = static_cast<std::uint32_t>(framed.size());
  std::vector<std::uint8_t> wire(4 + framed.size());
  wire[0] = static_cast<std::uint8_t>(len & 0xff);
  wire[1] = static_cast<std::uint8_t>((len >> 8) & 0xff);
  wire[2] = static_cast<std::uint8_t>((len >> 16) & 0xff);
  wire[3] = static_cast<std::uint8_t>((len >> 24) & 0xff);
  std::memcpy(wire.data() + 4, framed.data(), framed.size());
  return wire;
}

// ---- Message codec ----

TEST(MessageCodec, RoundTripsAllFields) {
  Message msg;
  msg.kind = MsgKind::kShuffleData;
  msg.src = kDriverEndpoint;
  msg.dst = 3;
  msg.split = 123456789;
  msg.epoch = 7;
  msg.seq = 0xdeadbeefcafeULL;
  msg.type = 42;
  msg.tag = 99;
  msg.a = 1;
  msg.b = 2;
  msg.c = 3;
  msg.text = "WC";
  msg.payload = MakePayload(257, 5);

  common::ByteBuffer wire;
  EncodeMessage(msg, &wire);
  Message back = DecodeMessage(&wire);

  EXPECT_EQ(back.kind, msg.kind);
  EXPECT_EQ(back.src, msg.src);
  EXPECT_EQ(back.dst, msg.dst);
  EXPECT_EQ(back.split, msg.split);
  EXPECT_EQ(back.epoch, msg.epoch);
  EXPECT_EQ(back.seq, msg.seq);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.tag, msg.tag);
  EXPECT_EQ(back.a, msg.a);
  EXPECT_EQ(back.text, msg.text);
  ASSERT_EQ(back.payload.size(), msg.payload.size());
  EXPECT_EQ(std::memcmp(back.payload.data(), msg.payload.data(), msg.payload.size()), 0);
}

TEST(MessageCodec, DecodesConcatenatedStream) {
  common::ByteBuffer wire;
  for (int i = 0; i < 10; ++i) {
    Message msg;
    msg.kind = i % 2 == 0 ? MsgKind::kShuffleData : MsgKind::kShuffleAck;
    msg.seq = static_cast<std::uint64_t>(i);
    msg.payload = MakePayload(static_cast<std::size_t>(i * 13), 9);
    EncodeMessage(msg, &wire);
  }
  for (int i = 0; i < 10; ++i) {
    const Message back = DecodeMessage(&wire);
    EXPECT_EQ(back.seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_TRUE(wire.AtEnd());
}

TEST(MessageCodec, ThrowsOnTruncation) {
  Message msg;
  msg.payload = MakePayload(100, 1);
  common::ByteBuffer wire;
  EncodeMessage(msg, &wire);
  common::ByteBuffer cut;
  cut.Append(wire.data(), wire.size() / 2);
  EXPECT_THROW(DecodeMessage(&cut), std::runtime_error);
}

TEST(JobWire, JobSpecRoundTrips) {
  JobSpec spec;
  spec.nodes = 3;
  spec.heap_kb = 12345;
  spec.dataset_kb = 777;
  spec.tpch_scale = 1.25;
  spec.max_workers = 9;
  spec.granularity_bytes = 4096;
  spec.seed = 1234567;
  spec.deadline_ms = 2500.0;
  spec.fault_tolerance = true;
  common::ByteBuffer wire;
  EncodeJobSpec(spec, &wire);
  const JobSpec back = DecodeJobSpec(&wire);
  EXPECT_EQ(back.nodes, spec.nodes);
  EXPECT_EQ(back.heap_kb, spec.heap_kb);
  EXPECT_EQ(back.dataset_kb, spec.dataset_kb);
  EXPECT_DOUBLE_EQ(back.tpch_scale, spec.tpch_scale);
  EXPECT_EQ(back.max_workers, spec.max_workers);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_TRUE(back.fault_tolerance);
}

// ---- FrameReader: adversarial stream boundaries ----

TEST(FrameReader, EmitsFramesFedOneByteAtATime) {
  std::vector<common::ByteBuffer> payloads;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(MakePayload(static_cast<std::size_t>(1 + i * 97), 3 * i));
    const auto wire = WireFrame(payloads.back());
    stream.insert(stream.end(), wire.begin(), wire.end());
  }

  FrameReader reader;
  std::size_t emitted = 0;
  common::ByteBuffer out;
  for (const std::uint8_t byte : stream) {
    reader.Feed(&byte, 1);
    while (reader.Next(&out)) {
      ASSERT_LT(emitted, payloads.size());
      ASSERT_EQ(out.size(), payloads[emitted].size());
      EXPECT_EQ(std::memcmp(out.data(), payloads[emitted].data(), out.size()), 0);
      ++emitted;
    }
  }
  EXPECT_EQ(emitted, payloads.size());
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameReader, EmitsFramesAcrossEverySplitPoint) {
  // One frame split at every possible boundary: prefix/frame straddles
  // included. Each split must yield exactly one identical payload.
  const common::ByteBuffer payload = MakePayload(73, 11);
  const auto wire = WireFrame(payload);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    FrameReader reader;
    common::ByteBuffer out;
    reader.Feed(wire.data(), split);
    const bool early = reader.Next(&out);
    if (split < wire.size()) {
      ASSERT_FALSE(early) << "split " << split;
      reader.Feed(wire.data() + split, wire.size() - split);
    }
    ASSERT_TRUE(early || reader.Next(&out)) << "split " << split;
    ASSERT_EQ(out.size(), payload.size());
    EXPECT_EQ(std::memcmp(out.data(), payload.data(), out.size()), 0);
    EXPECT_FALSE(reader.Next(&out));
  }
}

TEST(FrameReader, ShortReadReturnsFalseUntilComplete) {
  const auto wire = WireFrame(MakePayload(256, 1));
  FrameReader reader;
  common::ByteBuffer out;
  reader.Feed(wire.data(), 3);  // Not even a full length prefix.
  EXPECT_FALSE(reader.Next(&out));
  reader.Feed(wire.data() + 3, wire.size() - 4);  // All but the last byte.
  EXPECT_FALSE(reader.Next(&out));
  reader.Feed(wire.data() + wire.size() - 1, 1);
  EXPECT_TRUE(reader.Next(&out));
}

TEST(FrameReader, ThrowsOnCorruptChecksum) {
  auto wire = WireFrame(MakePayload(128, 7));
  wire[wire.size() - 1] ^= 0x01;  // Flip one payload bit.
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  common::ByteBuffer out;
  EXPECT_THROW(reader.Next(&out), std::runtime_error);
}

TEST(FrameReader, ThrowsOnOversizedLengthPrefix) {
  const std::uint32_t bogus = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &bogus, 4);
  FrameReader reader;
  reader.Feed(prefix, 4);
  common::ByteBuffer out;
  EXPECT_THROW(reader.Next(&out), std::runtime_error);
}

TEST(FrameReader, ThrowsOnZeroLengthPrefix) {
  const std::uint32_t zero = 0;
  FrameReader reader;
  reader.Feed(&zero, 4);
  common::ByteBuffer out;
  EXPECT_THROW(reader.Next(&out), std::runtime_error);
}

// ---- FrameSocket: property test over a real socketpair ----

TEST(FrameSocket, SocketpairRoundTripsRandomPayloads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameSocket tx(fds[0]);
  FrameSocket rx(fds[1]);

  std::mt19937_64 rng(20260809);
  std::vector<common::ByteBuffer> sent;
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    const std::size_t n = static_cast<std::size_t>(rng() % 8192);
    sent.push_back(MakePayload(n, static_cast<std::uint8_t>(rng())));
  }

  // Writer thread so large frames can't deadlock against a full socket
  // buffer (the reader drains concurrently).
  std::thread writer([&tx, &sent]() {
    for (const auto& p : sent) {
      ASSERT_TRUE(tx.SendFrame(p));
    }
    tx.Close();  // EOF for the reader after the last frame.
  });

  common::ByteBuffer out;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(rx.RecvFrame(&out)) << "frame " << i;
    ASSERT_EQ(out.size(), sent[static_cast<std::size_t>(i)].size()) << "frame " << i;
    EXPECT_EQ(std::memcmp(out.data(), sent[static_cast<std::size_t>(i)].data(), out.size()),
              0)
        << "frame " << i;
  }
  EXPECT_FALSE(rx.RecvFrame(&out));  // Clean EOF.
  writer.join();
}

// ---- Transport backends ----

TEST(Transport, ParseKindNames) {
  EXPECT_EQ(ParseTransportKind("inproc"), TransportKind::kInproc);
  EXPECT_EQ(ParseTransportKind("tcp"), TransportKind::kTcp);
  EXPECT_EQ(ParseTransportKind("uds"), TransportKind::kUds);
  EXPECT_EQ(ParseTransportKind("unix"), TransportKind::kUds);
  EXPECT_FALSE(ParseTransportKind("smoke-signals").has_value());
}

TEST(Transport, InprocDeliversSynchronously) {
  NetConfig config;
  config.kind = TransportKind::kInproc;
  auto transport = MakeTransport(config);
  std::atomic<int> got{0};
  transport->RegisterEndpoint(0, [&got](Message&& m) {
    EXPECT_EQ(m.seq, 7u);
    got.fetch_add(1);
  });
  Message msg;
  msg.kind = MsgKind::kHeartbeat;
  msg.dst = 0;
  msg.seq = 7;
  EXPECT_TRUE(transport->Send(std::move(msg)));
  EXPECT_EQ(got.load(), 1);  // Synchronous: done before Send returns.
  EXPECT_EQ(transport->Stats().msgs_sent, 1u);
}

class SocketTransportTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(SocketTransportTest, DeliversBatchesAndKeepsPayloadsIntact) {
  NetConfig config;
  config.kind = GetParam();
  auto transport = MakeTransport(config);

  constexpr int kMsgs = 500;
  std::atomic<int> received{0};
  std::atomic<int> corrupt{0};
  transport->RegisterEndpoint(2, [&](Message&& m) {
    const auto expect = MakePayload(64, static_cast<std::uint8_t>(m.seq));
    if (m.payload.size() != expect.size() ||
        std::memcmp(m.payload.data(), expect.data(), expect.size()) != 0) {
      corrupt.fetch_add(1);
    }
    received.fetch_add(1);
  });

  for (int i = 0; i < kMsgs; ++i) {
    Message msg;
    msg.kind = MsgKind::kShuffleData;
    msg.src = kDriverEndpoint;
    msg.dst = 2;
    msg.seq = static_cast<std::uint64_t>(i);
    msg.payload = MakePayload(64, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(transport->Send(std::move(msg)));
  }
  transport->Flush();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received.load() < kMsgs && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(received.load(), kMsgs);
  EXPECT_EQ(corrupt.load(), 0);

  const TransportStats stats = transport->Stats();
  EXPECT_EQ(stats.msgs_sent, static_cast<std::uint64_t>(kMsgs));
  // Batching: far fewer frames than messages on a fast loopback burst.
  EXPECT_LT(stats.frames_sent, stats.msgs_sent);
  EXPECT_EQ(stats.checksum_failures, 0u);
}

TEST_P(SocketTransportTest, RepliesRouteBackToSender) {
  NetConfig config;
  config.kind = GetParam();
  auto transport = MakeTransport(config);
  Transport* raw = transport.get();

  std::atomic<int> acks{0};
  transport->RegisterEndpoint(kDriverEndpoint, [&acks](Message&& m) {
    if (m.kind == MsgKind::kShuffleAck) {
      acks.fetch_add(1);
    }
  });
  transport->RegisterEndpoint(1, [raw](Message&& m) {
    Message ack;
    ack.kind = MsgKind::kShuffleAck;
    ack.src = 1;
    ack.dst = m.src;
    ack.seq = m.seq;
    raw->Send(std::move(ack));
  });

  constexpr int kMsgs = 50;
  for (int i = 0; i < kMsgs; ++i) {
    Message msg;
    msg.kind = MsgKind::kShuffleData;
    msg.src = kDriverEndpoint;
    msg.dst = 1;
    msg.seq = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(transport->Send(std::move(msg)));
  }
  transport->Flush();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (acks.load() < kMsgs && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(acks.load(), kMsgs);
}

TEST_P(SocketTransportTest, ClosedEndpointReportsPeerGone) {
  NetConfig config;
  config.kind = GetParam();
  auto transport = MakeTransport(config);
  transport->RegisterEndpoint(0, [](Message&&) {});
  Message probe;
  probe.kind = MsgKind::kShuffleData;
  probe.dst = 0;
  ASSERT_TRUE(transport->Send(std::move(probe)));
  transport->Flush();
  transport->CloseEndpoint(0);
  // The sender notices the dead peer either on this send or the next flush;
  // eventually Send must start failing.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool failed = false;
  while (!failed && std::chrono::steady_clock::now() < deadline) {
    Message msg;
    msg.kind = MsgKind::kShuffleData;
    msg.dst = 0;
    failed = !transport->Send(std::move(msg));
    transport->Flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(failed);
}

TEST_P(SocketTransportTest, ZeroBatchBytesStillDrains) {
  NetConfig config;
  config.kind = GetParam();
  // Pathological ceiling constructed directly (the env path clamps to >= 1):
  // every batch must still admit at least one message or the sender spins on
  // empty frames while producers block on the full queue forever.
  config.batch_bytes = 0;
  config.queue_cap = 4;
  auto transport = MakeTransport(config);
  constexpr int kMsgs = 32;
  std::atomic<int> received{0};
  transport->RegisterEndpoint(0, [&received](Message&&) { received.fetch_add(1); });
  for (int i = 0; i < kMsgs; ++i) {
    Message msg;
    msg.kind = MsgKind::kShuffleData;
    msg.dst = 0;
    msg.seq = static_cast<std::uint64_t>(i);
    msg.payload = MakePayload(32, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(transport->Send(std::move(msg)));
  }
  transport->Flush();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received.load() < kMsgs && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(received.load(), kMsgs);
}

TEST(Transport, EnvClampsBatchBytesToAtLeastOne) {
  setenv("ITASK_NET_BATCH_BYTES", "0", 1);
  const NetConfig config = NetConfigFromEnv();
  unsetenv("ITASK_NET_BATCH_BYTES");
  EXPECT_GE(config.batch_bytes, 1u);
}

TEST_P(SocketTransportTest, ReconnectsAfterReceiverShedsConnection) {
  NetConfig config;
  config.kind = GetParam();
  // The receiver discards every 2nd frame and drops its connection, like the
  // corrupt-frame path. The sender must requeue and reconnect — a send
  // failure to a still-registered endpoint is transient, never peer-gone.
  config.drop_rx_frame_every = 2;
  auto transport = MakeTransport(config);
  std::atomic<int> received{0};
  transport->RegisterEndpoint(3, [&received](Message&&) { received.fetch_add(1); });

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t sent = 0;
  while (std::chrono::steady_clock::now() < deadline &&
         (transport->Stats().send_retries == 0 || received.load() == 0)) {
    Message msg;
    msg.kind = MsgKind::kShuffleData;
    msg.dst = 3;
    msg.seq = sent++;
    msg.payload = MakePayload(64, static_cast<std::uint8_t>(sent));
    // The queue must never die while the endpoint stays registered.
    ASSERT_TRUE(transport->Send(std::move(msg)));
    transport->Flush();  // One frame per message: every 2nd one is shed.
  }
  EXPECT_GT(transport->Stats().send_retries, 0u);
  EXPECT_GT(received.load(), 0);
  // And after all that shedding, sends still succeed.
  Message tail;
  tail.kind = MsgKind::kShuffleData;
  tail.dst = 3;
  tail.seq = sent;
  EXPECT_TRUE(transport->Send(std::move(tail)));
  transport->Flush();
}

INSTANTIATE_TEST_SUITE_P(Backends, SocketTransportTest,
                         ::testing::Values(TransportKind::kTcp, TransportKind::kUds),
                         [](const auto& info) {
                           return std::string(TransportKindName(info.param));
                         });

// ---- Seeded network-fault engine (DESIGN.md §16) ----

TEST(NetFaultPlan, SpecRoundTripsEveryClause) {
  NetFaultPlan plan;
  std::string err;
  ASSERT_TRUE(NetFaultPlan::FromSpec(
      "seed=42,drop=0.01,reorder=0.02,dup=0.03,corrupt=0.004,trunc=0.005,"
      "reset=0.006,delay=0.1:2:1,part=0>2@50+100,part=*<>3@10+0,ctrldrop=1@75",
      &plan, &err))
      << err;
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.01);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.02);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.03);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.004);
  EXPECT_DOUBLE_EQ(plan.truncate, 0.005);
  EXPECT_DOUBLE_EQ(plan.reset, 0.006);
  EXPECT_DOUBLE_EQ(plan.delay, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_ms, 2.0);
  EXPECT_DOUBLE_EQ(plan.delay_jitter_ms, 1.0);
  ASSERT_EQ(plan.partitions.size(), 2u);
  EXPECT_EQ(plan.partitions[0].a, 0);
  EXPECT_EQ(plan.partitions[0].b, 2);
  EXPECT_FALSE(plan.partitions[0].two_way);
  EXPECT_DOUBLE_EQ(plan.partitions[0].start_ms, 50.0);
  EXPECT_DOUBLE_EQ(plan.partitions[0].duration_ms, 100.0);
  EXPECT_EQ(plan.partitions[1].a, kAnyEndpoint);
  EXPECT_EQ(plan.partitions[1].b, 3);
  EXPECT_TRUE(plan.partitions[1].two_way);
  EXPECT_DOUBLE_EQ(plan.partitions[1].duration_ms, 0.0);  // Never heals.
  ASSERT_EQ(plan.ctrl_drops.size(), 1u);
  EXPECT_EQ(plan.ctrl_drops[0].node, 1);
  EXPECT_DOUBLE_EQ(plan.ctrl_drops[0].at_ms, 75.0);
  EXPECT_TRUE(plan.active());

  // Describe() emits a spec that parses back into the identical plan.
  NetFaultPlan back;
  ASSERT_TRUE(NetFaultPlan::FromSpec(plan.Describe(), &back, &err)) << err;
  EXPECT_EQ(back.Describe(), plan.Describe());
}

TEST(NetFaultPlan, RejectsMalformedClauses) {
  NetFaultPlan plan;
  std::string err;
  EXPECT_FALSE(NetFaultPlan::FromSpec("drop=1.5", &plan, &err));  // P > 1.
  EXPECT_FALSE(NetFaultPlan::FromSpec("drop=x", &plan, &err));
  EXPECT_FALSE(NetFaultPlan::FromSpec("bogus=1", &plan, &err));
  EXPECT_FALSE(NetFaultPlan::FromSpec("noequals", &plan, &err));
  EXPECT_FALSE(NetFaultPlan::FromSpec("delay=0.1", &plan, &err));  // No MS.
  EXPECT_FALSE(NetFaultPlan::FromSpec("part=0-2@5+5", &plan, &err));
  EXPECT_FALSE(NetFaultPlan::FromSpec("part=0>2@5", &plan, &err));  // No +DUR.
  EXPECT_FALSE(NetFaultPlan::FromSpec("ctrldrop=1", &plan, &err));
  EXPECT_FALSE(NetFaultPlan::FromSpec("seed=", &plan, &err));
  EXPECT_FALSE(err.empty());
  // An empty spec is a valid no-op plan.
  ASSERT_TRUE(NetFaultPlan::FromSpec("", &plan, &err));
  EXPECT_FALSE(plan.active());
}

TEST(NetFaultPlan, FromSeedIsDeterministicAndModerate) {
  const NetFaultPlan a = NetFaultPlan::FromSeed(7);
  EXPECT_EQ(a.Describe(), NetFaultPlan::FromSeed(7).Describe());
  EXPECT_NE(a.Describe(), NetFaultPlan::FromSeed(8).Describe());
  EXPECT_TRUE(a.active());
  // Seeded plans never sever connections via corrupt/truncate — those are
  // opt-in through an explicit spec.
  EXPECT_DOUBLE_EQ(a.corrupt, 0.0);
  EXPECT_DOUBLE_EQ(a.truncate, 0.0);
  // Probabilities stay inside the moderate bands the ledger absorbs.
  EXPECT_GE(a.drop, 0.01);
  EXPECT_LE(a.drop, 0.05);
  EXPECT_GE(a.duplicate, 0.01);
  EXPECT_LE(a.duplicate, 0.05);
  EXPECT_GE(a.reorder, 0.02);
  EXPECT_LE(a.reorder, 0.08);
  EXPECT_GT(a.reset, 0.0);
  EXPECT_LE(a.reset, 0.01);
  ASSERT_EQ(a.partitions.size(), 1u);
  EXPECT_FALSE(a.partitions[0].two_way);
  EXPECT_GT(a.partitions[0].duration_ms, 0.0);  // Always heals.
  // Seed 0 clamps to the seed-1 plan instead of a degenerate all-zeros one.
  EXPECT_EQ(NetFaultPlan::FromSeed(0).Describe(), NetFaultPlan::FromSeed(1).Describe());
}

TEST(NetFaultEngine, DecisionStreamIsSeedDeterministicPerLink) {
  NetFaultPlan plan;
  std::string err;
  ASSERT_TRUE(NetFaultPlan::FromSpec(
      "seed=99,drop=0.2,reorder=0.2,dup=0.2,corrupt=0.1,trunc=0.1,reset=0.1,"
      "delay=0.3:1:0.5",
      &plan, &err))
      << err;
  NetFaultEngine x(plan);
  NetFaultEngine y(plan);
  const int dsts[] = {0, 1, 2, -1};
  std::vector<NetFaultEngine::Decision> per_dst1;
  for (int round = 0; round < 200; ++round) {
    for (const int dst : dsts) {
      const auto dx = x.Apply(dst, 128);
      const auto dy = y.Apply(dst, 128);
      EXPECT_EQ(dx.serial, dy.serial);
      EXPECT_EQ(dx.drop, dy.drop);
      EXPECT_EQ(dx.duplicate, dy.duplicate);
      EXPECT_EQ(dx.reorder, dy.reorder);
      EXPECT_EQ(dx.corrupt, dy.corrupt);
      EXPECT_EQ(dx.truncate, dy.truncate);
      EXPECT_EQ(dx.reset, dy.reset);
      EXPECT_DOUBLE_EQ(dx.delay_ms, dy.delay_ms);
      // At most one connection/frame-destroying fault per frame, and a
      // destroyed frame is never also duplicated/reordered — a dropped
      // duplicate would corrupt the ledger's delivery accounting.
      EXPECT_LE(static_cast<int>(dx.drop) + static_cast<int>(dx.corrupt) +
                    static_cast<int>(dx.truncate) + static_cast<int>(dx.reset),
                1);
      if (dx.drop || dx.reset) {
        EXPECT_FALSE(dx.duplicate);
        EXPECT_FALSE(dx.reorder);
      }
      if (dst == 1) {
        per_dst1.push_back(dx);
      }
    }
  }
  EXPECT_EQ(x.faults_injected(), y.faults_injected());
  EXPECT_GT(x.faults_injected(), 0u);

  // One link's frame count never perturbs another link's draws: an engine
  // that only ever serves dst=1 replays dst=1's exact stream.
  NetFaultEngine solo(plan);
  for (const auto& expect : per_dst1) {
    const auto got = solo.Apply(1, 128);
    EXPECT_EQ(got.serial, expect.serial);
    EXPECT_EQ(got.drop, expect.drop);
    EXPECT_EQ(got.duplicate, expect.duplicate);
    EXPECT_EQ(got.reorder, expect.reorder);
    EXPECT_EQ(got.reset, expect.reset);
    EXPECT_DOUBLE_EQ(got.delay_ms, expect.delay_ms);
  }
}

TEST(NetFaultEngine, PartitionWindowBlocksHealsAndFiresObserverEdges) {
  NetFaultPlan plan;
  std::string err;
  // Node 1's outbound traffic black-holed from t=0 for 50ms.
  ASSERT_TRUE(NetFaultPlan::FromSpec("part=1>*@0+50", &plan, &err)) << err;
  NetFaultEngine engine(plan);
  std::vector<std::pair<int, bool>> edges;
  engine.set_link_observer(
      [&edges](int node, bool blocked) { edges.emplace_back(node, blocked); });

  EXPECT_TRUE(engine.MessageBlocked(1, 2));   // 1 -> anyone is cut.
  EXPECT_FALSE(engine.MessageBlocked(2, 1));  // One-way: reverse flows.
  EXPECT_FALSE(engine.ConnectAllowed(1, 3));
  EXPECT_TRUE(engine.ConnectAllowed(3, 1));
  EXPECT_GE(engine.FaultCount(NetFaultKind::kPartitionDrop), 1u);
  EXPECT_GE(engine.FaultCount(NetFaultKind::kConnectRefused), 1u);

  // The window heals on its own; traffic resumes and the observer hears the
  // closing edge.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.MessageBlocked(1, 2) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(engine.MessageBlocked(1, 2));
  EXPECT_TRUE(engine.ConnectAllowed(1, 3));
  ASSERT_GE(edges.size(), 2u);
  EXPECT_EQ(edges.front(), (std::pair<int, bool>{1, true}));
  EXPECT_EQ(edges.back(), (std::pair<int, bool>{1, false}));
}

// ---- Control plane ----

TEST(CtrlPlane, JoinDispatchResultShutdown) {
  CtrlServer server(0);
  ASSERT_GT(server.port(), 0);

  auto daemon = [&server](const std::string& name, std::uint64_t cap) {
    CtrlClient client;
    const int id = client.Join("127.0.0.1", server.port(), name, cap);
    ASSERT_GE(id, 0);
    client.StartHeartbeats(5, [cap]() { return std::make_pair(cap / 2, cap); });
    client.Serve([](const std::string& app, common::ByteBuffer& config) {
      const JobSpec spec = DecodeJobSpec(&config);
      JobResultMsg result;
      result.checksum = 0x1000 + spec.seed;
      result.records = app.size();
      result.success = true;
      return result;
    });
  };
  std::thread d0(daemon, "alpha", 1 << 20);
  std::thread d1(daemon, "beta", 2 << 20);

  ASSERT_TRUE(server.WaitForNodes(2, 10000));
  EXPECT_EQ(server.num_nodes(), 2);

  JobSpec spec;
  spec.seed = 77;
  common::ByteBuffer config;
  EncodeJobSpec(spec, &config);
  for (int node = 0; node < 2; ++node) {
    ASSERT_TRUE(server.Dispatch(node, "WC", config));
  }
  for (int node = 0; node < 2; ++node) {
    JobResultMsg result;
    ASSERT_TRUE(server.WaitResult(node, 10000, &result)) << "node " << node;
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.checksum, 0x1000u + 77u);
    EXPECT_EQ(result.records, 2u);  // strlen("WC")
  }

  // Heartbeats carried heap stats into the server's node table.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.node(0).heap_used == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(server.node(0).heap_used, 0u);
  EXPECT_EQ(server.node(0).name, "alpha");
  EXPECT_EQ(server.node(1).name, "beta");

  server.Shutdown();  // kBye ends both Serve loops.
  d0.join();
  d1.join();
}

TEST(CtrlPlane, ByeWakesResultWaiters) {
  CtrlServer server(0);
  ASSERT_GT(server.port(), 0);

  // A raw daemon connection: join by hand so the test controls exactly when
  // the goodbye goes out.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  FrameSocket sock(fd);
  {
    Message join;
    join.kind = MsgKind::kJoin;
    join.text = "raw";
    common::ByteBuffer wire;
    EncodeMessage(join, &wire);
    ASSERT_TRUE(sock.SendFrame(wire));
    common::ByteBuffer ack;
    ASSERT_TRUE(sock.RecvFrame(&ack));
  }
  ASSERT_TRUE(server.WaitForNodes(1, 10000));

  std::thread goodbye([&sock] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Message bye;
    bye.kind = MsgKind::kBye;
    common::ByteBuffer wire;
    EncodeMessage(bye, &wire);
    sock.SendFrame(wire);
  });
  // The waiter must wake when the daemon says goodbye, not sleep out the
  // full timeout.
  const auto t0 = std::chrono::steady_clock::now();
  JobResultMsg result;
  EXPECT_FALSE(server.WaitResult(0, /*timeout_ms=*/10000, &result));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(5));
  EXPECT_FALSE(server.node(0).connected);
  goodbye.join();
  server.Shutdown();
}

// ---- Ctrl-plane session resume ----

TEST(CtrlPlane, DroppedPeerResumesUnderSameIdWithoutDuplicateResults) {
  CtrlServer server(0);
  ASSERT_GT(server.port(), 0);

  CtrlClient client;
  const int id = client.Join("127.0.0.1", server.port(), "resume-me", 1 << 20);
  ASSERT_EQ(id, 0);
  client.StartHeartbeats(2, [] {
    return std::make_pair(std::uint64_t(1) << 10, std::uint64_t(1) << 20);
  });
  std::atomic<int> jobs{0};
  std::thread serve([&client, &jobs] {
    client.Serve([&jobs](const std::string&, common::ByteBuffer&) {
      JobResultMsg r;
      r.checksum = 0x1111u + static_cast<std::uint64_t>(jobs.fetch_add(1));
      r.records = 1;
      r.success = true;
      return r;
    });
  });

  // One job before the cut, so the client holds a recent result to re-ship.
  JobSpec spec;
  common::ByteBuffer cfg;
  EncodeJobSpec(spec, &cfg);
  ASSERT_TRUE(server.Dispatch(id, "WC", cfg));
  JobResultMsg first;
  ASSERT_TRUE(server.WaitResult(id, 10000, &first));
  EXPECT_EQ(first.checksum, 0x1111u);

  // Sever the ctrl socket server-side, as a network cut would. The daemon
  // must resume the session under its original node id — same slot, no
  // ghost peer.
  server.DropPeer(id);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while ((client.reconnects() == 0 || !server.node(id).connected) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(server.ctrl_reconnects(), 1u);
  EXPECT_TRUE(server.node(id).connected);
  EXPECT_EQ(server.num_nodes(), 1);
  EXPECT_EQ(server.node(id).name, "resume-me");

  // The resync re-shipped the pre-cut result; the server must dedup it by
  // its wire seq instead of surfacing a duplicate.
  JobResultMsg dup;
  EXPECT_FALSE(server.WaitResult(id, 250, &dup));

  // And the resumed session still serves jobs end-to-end.
  ASSERT_TRUE(server.Dispatch(id, "WC", cfg));
  JobResultMsg second;
  ASSERT_TRUE(server.WaitResult(id, 10000, &second));
  EXPECT_EQ(second.checksum, 0x1112u);

  server.Shutdown();  // kBye ends the Serve loop.
  serve.join();
}

// ---- End-to-end: socket shuffle reproduces inproc fingerprints ----

class TransportParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("ITASK_HEARTBEAT_MS", "1", 1);
    setenv("ITASK_SUSPECT_TIMEOUT_MS", "25", 1);
  }
  void TearDown() override {
    unsetenv("ITASK_HEARTBEAT_MS");
    unsetenv("ITASK_SUSPECT_TIMEOUT_MS");
  }

  static apps::AppResult RunOver(const char* app, TransportKind kind,
                                 cluster::FailureModel* model = nullptr,
                                 int drop_rx_frame_every = 0, int ack_timeout_ms = 0,
                                 std::size_t dataset_bytes = 512 << 10,
                                 const NetFaultPlan* fault_plan = nullptr) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.heap.capacity_bytes = 48 << 20;
    cc.heap.real_pauses = false;
    cc.net.kind = kind;
    cc.net.drop_rx_frame_every = drop_rx_frame_every;
    if (ack_timeout_ms > 0) {
      cc.net.ack_timeout_ms = ack_timeout_ms;
    }
    if (fault_plan != nullptr) {
      cc.net.fault_plan = *fault_plan;
    }
    cluster::Cluster cluster(cc);
    apps::AppConfig config;
    config.dataset_bytes = dataset_bytes;
    config.tpch_scale = 0.2;
    config.max_workers = 4;
    config.granularity_bytes = 8 << 10;
    config.fault_tolerance = true;
    config.failure_model = model;
    return apps::RunHyracksApp(app, cluster, config, apps::Mode::kITask);
  }
};

TEST_F(TransportParityTest, FaultFreeTcpMatchesInproc) {
  for (const char* app : {"WC", "HS", "HJ"}) {
    const apps::AppResult inproc = RunOver(app, TransportKind::kInproc);
    ASSERT_TRUE(inproc.metrics.succeeded) << app;
    ASSERT_GT(inproc.records, 0u) << app;
    EXPECT_EQ(inproc.metrics.net_msgs_sent, 0u) << app;

    const apps::AppResult tcp = RunOver(app, TransportKind::kTcp);
    ASSERT_TRUE(tcp.metrics.succeeded) << app << ": " << tcp.metrics.Summary();
    EXPECT_EQ(tcp.checksum, inproc.checksum) << app;
    EXPECT_EQ(tcp.records, inproc.records) << app;
    EXPECT_EQ(tcp.metrics.duplicate_tuples_dropped, 0u) << app;
    // The shuffle really crossed the wire.
    EXPECT_GT(tcp.metrics.net_msgs_sent, 0u) << app;
    EXPECT_GT(tcp.metrics.net_bytes_sent, 0u) << app;
  }
}

TEST_F(TransportParityTest, LossyTcpKeepsFingerprint) {
  // A genuinely lossy channel: the receive side discards every 10th frame
  // and sheds the connection carrying it. Senders must reconnect (never
  // report a live peer as gone) and the shuffle ledger's (split,epoch,seq)
  // dedup + ack-timeout resend must recover every lost payload bit-for-bit.
  // Widen the suspect window and slow heartbeats so the injected loss
  // exercises the ledger, not the failure detector.
  setenv("ITASK_SUSPECT_TIMEOUT_MS", "10000", 1);
  setenv("ITASK_HEARTBEAT_MS", "50", 1);
  constexpr std::size_t kDataset = 128 << 10;
  const apps::AppResult reference =
      RunOver("WC", TransportKind::kInproc, /*model=*/nullptr,
              /*drop_rx_frame_every=*/0, /*ack_timeout_ms=*/0, kDataset);
  ASSERT_TRUE(reference.metrics.succeeded);

  const apps::AppResult lossy =
      RunOver("WC", TransportKind::kTcp, /*model=*/nullptr,
              /*drop_rx_frame_every=*/10, /*ack_timeout_ms=*/100, kDataset);
  ASSERT_TRUE(lossy.metrics.succeeded) << lossy.metrics.Summary();
  EXPECT_EQ(lossy.checksum, reference.checksum);
  EXPECT_EQ(lossy.records, reference.records);
  EXPECT_EQ(lossy.metrics.duplicate_tuples_dropped, 0u);
  // The loss was real: some recovery machinery had to fire.
  EXPECT_GT(lossy.metrics.net_send_retries + lossy.metrics.net_ack_timeouts +
                lossy.metrics.net_dup_payloads_dropped,
            0u);
}

TEST_F(TransportParityTest, SeededChaosPlanTcpKeepsFingerprint) {
  // Drop + reorder + duplicate + delay + reset, all riding one seeded plan:
  // the ledger's (node,split,epoch,seq) dedup and ack-timeout redelivery must
  // absorb every one of them without perturbing the fingerprint. Widen the
  // suspect window so injected loss exercises the ledger, not the detector.
  setenv("ITASK_SUSPECT_TIMEOUT_MS", "10000", 1);
  setenv("ITASK_HEARTBEAT_MS", "50", 1);
  constexpr std::size_t kDataset = 128 << 10;
  const apps::AppResult reference =
      RunOver("WC", TransportKind::kInproc, /*model=*/nullptr,
              /*drop_rx_frame_every=*/0, /*ack_timeout_ms=*/0, kDataset);
  ASSERT_TRUE(reference.metrics.succeeded);

  NetFaultPlan plan;
  std::string err;
  ASSERT_TRUE(NetFaultPlan::FromSpec(
      "seed=7,drop=0.02,reorder=0.05,dup=0.03,reset=0.005,delay=0.1:1:0.5",
      &plan, &err))
      << err;
  const apps::AppResult chaotic =
      RunOver("WC", TransportKind::kTcp, /*model=*/nullptr,
              /*drop_rx_frame_every=*/0, /*ack_timeout_ms=*/100, kDataset, &plan);
  ASSERT_TRUE(chaotic.metrics.succeeded) << chaotic.metrics.Summary();
  EXPECT_EQ(chaotic.checksum, reference.checksum);
  EXPECT_EQ(chaotic.records, reference.records);
  EXPECT_EQ(chaotic.metrics.duplicate_tuples_dropped, 0u);
  // The plan really fired (seeded probabilities over thousands of frames).
  EXPECT_GT(chaotic.metrics.net_faults_injected, 0u);
}

TEST_F(TransportParityTest, TimedPartitionHealsWithoutReexecution) {
  // A one-way partition black-holes node 1's outbound traffic (shuffle data
  // AND heartbeats) for 150ms mid-job. The link observer parks the node in
  // kDisconnected, the grace window outlasts the cut, and after the heal the
  // job finishes with zero lineage re-execution and nobody declared dead.
  setenv("ITASK_HEARTBEAT_MS", "5", 1);
  setenv("ITASK_SUSPECT_TIMEOUT_MS", "200", 1);
  setenv("ITASK_DISCONNECT_GRACE_MS", "60000", 1);
  const apps::AppResult reference = RunOver("WC", TransportKind::kInproc);
  ASSERT_TRUE(reference.metrics.succeeded);

  NetFaultPlan plan;
  std::string err;
  ASSERT_TRUE(NetFaultPlan::FromSpec("part=1>*@50+150", &plan, &err)) << err;
  const apps::AppResult cut =
      RunOver("WC", TransportKind::kTcp, /*model=*/nullptr,
              /*drop_rx_frame_every=*/0, /*ack_timeout_ms=*/100, 512 << 10, &plan);
  unsetenv("ITASK_DISCONNECT_GRACE_MS");
  ASSERT_TRUE(cut.metrics.succeeded) << cut.metrics.Summary();
  EXPECT_EQ(cut.checksum, reference.checksum);
  EXPECT_EQ(cut.records, reference.records);
  EXPECT_EQ(cut.metrics.duplicate_tuples_dropped, 0u);
  // Zero re-executions attributable to the healed cut.
  EXPECT_EQ(cut.metrics.splits_reexecuted, 0u);
  EXPECT_EQ(cut.metrics.nodes_failed, 0u);
  EXPECT_GT(cut.metrics.net_faults_injected, 0u);  // Partition drops counted.
}

TEST_F(TransportParityTest, KilledNodeOverTcpKeepsFingerprint) {
  const apps::AppResult reference = RunOver("WC", TransportKind::kInproc);
  ASSERT_TRUE(reference.metrics.succeeded);

  cluster::FailureModel model;
  model.ScheduleKill(1, 2.0);
  const apps::AppResult faulted = RunOver("WC", TransportKind::kTcp, &model);
  ASSERT_TRUE(faulted.metrics.succeeded) << faulted.metrics.Summary();
  EXPECT_EQ(faulted.checksum, reference.checksum);
  EXPECT_EQ(faulted.records, reference.records);
  EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u);
  EXPECT_GE(faulted.metrics.nodes_failed, 1u);
}

// ---- Telemetry plane (DESIGN.md §15) ----

TEST(MetricsWire, RunMetricsRoundTripsWithHistograms) {
  common::RunMetrics m;
  m.succeeded = true;
  m.wall_ms = 1234.5;
  m.gc_ms = 88.25;
  m.gc_count = 7;
  m.interrupts = 19;
  m.spilled_bytes = 9ull << 20;
  m.net_msgs_sent = 41;
  m.net_bytes_sent = 5ull << 20;
  m.partitions_migrated = 3;
  m.migrated_bytes = 768 << 10;
  m.events_dropped = 11;
  obs::Histogram interrupt_hist(obs::InterruptLatencyBoundsNs());
  obs::Histogram gc_hist(obs::GcPauseBoundsNs());
  for (int i = 0; i < 150; ++i) {
    interrupt_hist.Observe(static_cast<std::uint64_t>(2000 + i * 1511));
    gc_hist.Observe(static_cast<std::uint64_t>(1'000'000 + i * 40'013));
  }
  m.interrupt_latency_hist = interrupt_hist.snapshot();
  m.gc_pause_hist = gc_hist.snapshot();

  common::ByteBuffer wire;
  EncodeRunMetrics(m, &wire);
  const common::RunMetrics d = DecodeRunMetrics(&wire);
  EXPECT_TRUE(d.succeeded);
  EXPECT_DOUBLE_EQ(d.wall_ms, m.wall_ms);
  EXPECT_DOUBLE_EQ(d.gc_ms, m.gc_ms);
  EXPECT_EQ(d.gc_count, m.gc_count);
  EXPECT_EQ(d.interrupts, m.interrupts);
  EXPECT_EQ(d.spilled_bytes, m.spilled_bytes);
  EXPECT_EQ(d.net_msgs_sent, m.net_msgs_sent);
  EXPECT_EQ(d.net_bytes_sent, m.net_bytes_sent);
  EXPECT_EQ(d.partitions_migrated, m.partitions_migrated);
  EXPECT_EQ(d.migrated_bytes, m.migrated_bytes);
  EXPECT_EQ(d.events_dropped, m.events_dropped);
  // Histograms survive bucket-exactly, so cluster-side quantiles match the
  // daemon's own view.
  EXPECT_EQ(d.interrupt_latency_hist.counts, m.interrupt_latency_hist.counts);
  EXPECT_EQ(d.interrupt_latency_hist.count, m.interrupt_latency_hist.count);
  EXPECT_EQ(d.interrupt_latency_hist.sum, m.interrupt_latency_hist.sum);
  EXPECT_EQ(d.interrupt_latency_hist.max, m.interrupt_latency_hist.max);
  EXPECT_DOUBLE_EQ(d.interrupt_latency_hist.Quantile(0.99),
                   m.interrupt_latency_hist.Quantile(0.99));
  EXPECT_EQ(d.gc_pause_hist.counts, m.gc_pause_hist.counts);
  EXPECT_DOUBLE_EQ(d.gc_pause_hist.Quantile(0.5), m.gc_pause_hist.Quantile(0.5));
}

TEST_F(TransportParityTest, SpanIdsStableAcrossSeededReruns) {
  // Span ids hash ledger coordinates (trace, kind, src, dst, split, epoch,
  // seq), not wall-clock or pointer state, so two identical seeded runs must
  // produce the same id set even though thread interleaving differs. Resends
  // reuse the original delivery's span, so retries don't perturb the set.
  const auto run = [] {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.heap.capacity_bytes = 48 << 20;
    cc.heap.real_pauses = false;
    cc.net.kind = TransportKind::kTcp;
    cluster::Cluster cluster(cc);
    apps::AppConfig config;
    config.dataset_bytes = 256 << 10;
    config.max_workers = 4;
    config.granularity_bytes = 8 << 10;
    config.fault_tolerance = true;
    config.seed = 1234;
    config.trace_active = true;
    return apps::RunHyracksApp("WC", cluster, config, apps::Mode::kITask);
  };
  const apps::AppResult first = run();
  const apps::AppResult second = run();
  ASSERT_TRUE(first.metrics.succeeded) << first.metrics.Summary();
  ASSERT_TRUE(second.metrics.succeeded) << second.metrics.Summary();
  const auto spans = [](const apps::AppResult& r) {
    std::set<std::uint64_t> ids;
    for (const obs::Event& e : r.events) {
      if (e.kind == obs::EventKind::kMsgSend) {
        EXPECT_NE(e.a, 0u);  // A stamped flow event always has a span.
        ids.insert(e.a);
      }
    }
    return ids;
  };
  const std::set<std::uint64_t> a = spans(first);
  const std::set<std::uint64_t> b = spans(second);
  ASSERT_FALSE(a.empty());  // The shuffle really crossed the wire, traced.
  EXPECT_EQ(a, b);
}

TEST_F(TransportParityTest, HangedNodeOverTcpKeepsFingerprint) {
  const apps::AppResult reference = RunOver("HS", TransportKind::kInproc);
  ASSERT_TRUE(reference.metrics.succeeded);

  cluster::FailureModel model;
  model.ScheduleHang(2, 2.0, /*silence_age_ms=*/10000.0);
  const apps::AppResult faulted = RunOver("HS", TransportKind::kTcp, &model);
  ASSERT_TRUE(faulted.metrics.succeeded) << faulted.metrics.Summary();
  EXPECT_EQ(faulted.checksum, reference.checksum);
  EXPECT_EQ(faulted.records, reference.records);
  EXPECT_EQ(faulted.metrics.duplicate_tuples_dropped, 0u);
  EXPECT_GE(faulted.metrics.nodes_failed, 1u);
}

}  // namespace
}  // namespace itask::net
