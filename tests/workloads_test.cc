#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/graph.h"
#include "workloads/posts.h"
#include "workloads/reviews.h"
#include "workloads/text.h"
#include "workloads/tpch.h"

namespace itask::workloads {
namespace {

TEST(TextTest, GeneratesRequestedBytes) {
  TextConfig tc;
  tc.target_bytes = 100'000;
  std::uint64_t seen = 0;
  const std::uint64_t reported = ForEachDocument(tc, [&](const std::string& doc) {
    seen += doc.size() + 1;
    EXPECT_FALSE(doc.empty());
  });
  EXPECT_EQ(seen, reported);
  EXPECT_GE(reported, tc.target_bytes);
  EXPECT_LT(reported, tc.target_bytes + 4096);
}

TEST(TextTest, Deterministic) {
  TextConfig tc;
  tc.target_bytes = 10'000;
  std::vector<std::string> a, b;
  ForEachDocument(tc, [&](const std::string& d) { a.push_back(d); });
  ForEachDocument(tc, [&](const std::string& d) { b.push_back(d); });
  EXPECT_EQ(a, b);
}

TEST(TextTest, ZipfSkewInWords) {
  TextConfig tc;
  tc.target_bytes = 200'000;
  tc.vocabulary = 10'000;
  std::map<std::string, int> counts;
  ForEachWord(tc, [&](const std::string& w) { ++counts[w]; });
  EXPECT_GT(counts["w1"], counts["w100"] * 5);
}

TEST(PostsTest, HotPostsReceiveMostComments) {
  PostsConfig pc;
  pc.target_bytes = 500'000;
  pc.num_posts = 1'000;
  std::map<std::uint64_t, int> per_post;
  std::uint64_t total = 0;
  ForEachComment(pc, [&](const Comment& c) {
    ++per_post[c.post_id];
    ++total;
  });
  // The hottest post holds a disproportionate share.
  int max_count = 0;
  for (const auto& [id, n] : per_post) {
    max_count = std::max(max_count, n);
  }
  EXPECT_GT(static_cast<double>(max_count), 0.05 * static_cast<double>(total));
}

TEST(TpchTest, RowCountsFollowScale) {
  TpchConfig tc;
  tc.scale = 2.0;
  EXPECT_EQ(tc.NumCustomers(), 3'000u);
  EXPECT_EQ(tc.NumOrders(), 30'000u);
  EXPECT_EQ(tc.NumLineItems(), 120'000u);
}

TEST(TpchTest, ForeignKeysInRange) {
  TpchConfig tc;
  tc.scale = 0.5;
  const std::uint64_t customers = tc.NumCustomers();
  const std::uint64_t orders = tc.NumOrders();
  ForEachOrder(tc, [&](const Order& o) {
    EXPECT_GE(o.cust_key, 1u);
    EXPECT_LE(o.cust_key, customers);
  });
  ForEachLineItem(tc, [&](const LineItem& li) {
    EXPECT_GE(li.order_key, 1u);
    EXPECT_LE(li.order_key, orders);
  });
}

TEST(TpchTest, CustomerKeysAreDense) {
  TpchConfig tc;
  tc.scale = 0.1;
  std::set<std::uint64_t> keys;
  ForEachCustomer(tc, [&](const Customer& c) { keys.insert(c.cust_key); });
  EXPECT_EQ(keys.size(), tc.NumCustomers());
  EXPECT_EQ(*keys.begin(), 1u);
  EXPECT_EQ(*keys.rbegin(), tc.NumCustomers());
}

TEST(GraphTest, EdgeEndpointsInRange) {
  GraphConfig gc;
  gc.num_vertices = 1'000;
  gc.num_edges = 10'000;
  ForEachEdge(gc, [&](const Edge& e) {
    EXPECT_GE(e.src, 1u);
    EXPECT_LE(e.src, gc.num_vertices);
    EXPECT_GE(e.dst, 1u);
    EXPECT_LE(e.dst, gc.num_vertices);
  });
}

TEST(GraphTest, InDegreeIsSkewed) {
  GraphConfig gc;
  gc.num_vertices = 10'000;
  gc.num_edges = 100'000;
  std::map<std::uint64_t, int> in_degree;
  ForEachEdge(gc, [&](const Edge& e) { ++in_degree[e.dst]; });
  EXPECT_GT(in_degree[1], 50 * (in_degree[5000] + 1));
}

TEST(GraphTest, GraphForBytesMatchesPaperRatio) {
  const auto gc = GraphForBytes(16 << 20);
  EXPECT_EQ(gc.num_edges, (16u << 20) / 16u);
  const double ratio = static_cast<double>(gc.num_edges) / static_cast<double>(gc.num_vertices);
  EXPECT_NEAR(ratio, 5.7, 0.2);
}

TEST(ReviewsTest, MostSentencesShortSomeVeryLong) {
  ReviewsConfig rc;
  rc.target_bytes = 2 << 20;
  rc.long_sentence_probability = 0.01;
  std::size_t longest = 0;
  std::size_t count = 0;
  std::uint64_t total_len = 0;
  ForEachSentence(rc, [&](const std::string& s) {
    longest = std::max(longest, s.size());
    total_len += s.size();
    ++count;
  });
  const double avg = static_cast<double>(total_len) / static_cast<double>(count);
  EXPECT_GT(static_cast<double>(longest), 10.0 * avg);
}

TEST(LemmatizerSimTest, ChargesAmplifiedTemporaries) {
  memsim::HeapConfig hc;
  hc.capacity_bytes = 1 << 20;
  hc.real_pauses = false;
  memsim::ManagedHeap heap(hc);
  LemmatizerSim lemmatizer(&heap, 1'000);
  const auto lemmas = lemmatizer.Lemmatize("cats dogs bird");
  ASSERT_EQ(lemmas.size(), 3u);
  EXPECT_EQ(lemmas[0], "cat");
  EXPECT_EQ(lemmas[1], "dog");
  EXPECT_EQ(lemmas[2], "bird");
  // Temporaries were charged and released as garbage.
  EXPECT_EQ(heap.live_bytes(), 0u);
  EXPECT_GE(heap.garbage_bytes(), 14'000u);
}

TEST(LemmatizerSimTest, LongSentenceOverflowsSmallHeap) {
  memsim::HeapConfig hc;
  hc.capacity_bytes = 64 << 10;
  hc.real_pauses = false;
  memsim::ManagedHeap heap(hc);
  LemmatizerSim lemmatizer(&heap, 1'000);
  const std::string long_sentence(100, 'a');  // 100KB of temporaries > 64KB heap.
  EXPECT_THROW(lemmatizer.Lemmatize(long_sentence), memsim::OutOfMemoryError);
}

}  // namespace
}  // namespace itask::workloads
