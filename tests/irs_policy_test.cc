// Tests of the IRS policy machinery: scheduler victim rules, partition
// manager spill ordering and thrash control, slow-start growth, the
// coordinator deadline, and the policy-ablation modes.
#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/cluster.h"
#include "cluster/itask_job.h"
#include "itask/partition_manager.h"
#include "itask/typed_partition.h"

namespace itask::core {
namespace {

struct U64Traits {
  using Tuple = std::uint64_t;
  static std::uint64_t SizeOf(const Tuple&) { return 1024; }  // Chunky tuples.
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteVarint(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadVarint(); }
};
using U64Partition = VectorPartition<U64Traits>;

memsim::HeapConfig FastHeap(std::uint64_t capacity) {
  memsim::HeapConfig config;
  config.capacity_bytes = capacity;
  config.real_pauses = false;
  return config;
}

// A slow task whose Process blocks until released — for exercising scheduler
// state while tasks are mid-flight.
class SlowTask : public ITask<U64Partition> {
 public:
  explicit SlowTask(std::atomic<bool>* release, std::atomic<int>* started)
      : release_(release), started_(started) {}
  void Initialize(TaskContext&) override {}
  void Process(TaskContext& ctx, const std::uint64_t&) override {
    started_->fetch_add(1);
    while (!release_->load() && !ctx.ShouldInterrupt()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  void Interrupt(TaskContext&) override {}
  void Cleanup(TaskContext&) override {}

 private:
  std::atomic<bool>* release_;
  std::atomic<int>* started_;
};

TEST(SchedulerTest, SlowStartGrowsParallelismGradually) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 64 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = 8;
  cluster::ItaskJob job(cl, irs);
  const TypeId in_t = TypeIds::Get("pol.slow_in");
  const TypeId out_t = TypeIds::Get("pol.slow_out");

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "slow";
    spec.input_type = in_t;
    spec.output_type = out_t;
    spec.factory = [&] { return std::make_unique<SlowTask>(&release, &started); };
    return spec;
  });

  std::thread releaser([&] {
    // Observe that work starts with ONE active task (slow start), then grows.
    while (started.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const int after_first = started.load();
    EXPECT_LE(after_first, 2);  // Slow start: not all 8 at once.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    release.store(true);
  });

  const bool ok = job.Run([&] {
    for (int i = 0; i < 16; ++i) {
      auto dp = std::make_shared<U64Partition>(in_t, &cl.node(0).heap(), &cl.node(0).spill());
      dp->Append(1);
      dp->Spill();
      job.runtime(0).Push(std::move(dp));
    }
  });
  releaser.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(started.load(), 16);  // Every partition was processed.
}

TEST(CoordinatorTest, DeadlineAbortsStuckJob) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 4 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = 2;
  cluster::ItaskJob job(cl, irs);
  const TypeId in_t = TypeIds::Get("pol.stuck_in");

  std::atomic<bool> never{false};
  std::atomic<int> started{0};
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "stuck";
    spec.input_type = in_t;
    spec.output_type = TypeIds::Get("pol.stuck_out");
    spec.factory = [&] { return std::make_unique<SlowTask>(&never, &started); };
    return spec;
  });

  common::Stopwatch watch;
  const bool ok = job.Run(
      [&] {
        auto dp = std::make_shared<U64Partition>(in_t, &cl.node(0).heap(), &cl.node(0).spill());
        dp->Append(1);
        job.runtime(0).Push(std::move(dp));
      },
      /*deadline_ms=*/300);
  EXPECT_FALSE(ok);
  EXPECT_LT(watch.ElapsedMs(), 5'000);
}

class PartitionManagerTest : public ::testing::Test {
 protected:
  PartitionManagerTest()
      : heap_(FastHeap(64 << 20)),
        spill_(std::filesystem::temp_directory_path(), "pmtest"),
        state_(std::make_shared<JobState>()),
        runtime_({0, "pmtest", &heap_, &spill_}, IrsConfig{}, state_) {}

  PartitionPtr MakeQueued(TypeId type, int tuples) {
    auto dp = std::make_shared<U64Partition>(type, &heap_, &spill_);
    for (int i = 0; i < tuples; ++i) {
      dp->Append(static_cast<std::uint64_t>(i));
    }
    runtime_.queue().Push(dp);
    return dp;
  }

  memsim::ManagedHeap heap_;
  serde::SpillManager spill_;
  std::shared_ptr<JobState> state_;
  IrsRuntime runtime_;
};

TEST_F(PartitionManagerTest, SpillStepFreesRequestedBytes) {
  const TypeId t = TypeIds::Get("pm.a");
  MakeQueued(t, 100);  // 100KB
  MakeQueued(t, 100);
  const std::uint64_t before = heap_.live_bytes();
  const std::uint64_t freed = runtime_.partition_manager().SpillStep(50 << 10);
  EXPECT_GE(freed, 50u << 10);
  EXPECT_LT(heap_.live_bytes(), before);
}

TEST_F(PartitionManagerTest, SpillSkipsPinnedPartitions) {
  const TypeId t = TypeIds::Get("pm.b");
  auto dp = MakeQueued(t, 10);
  auto popped = runtime_.queue().PopOne(t);
  ASSERT_EQ(popped.get(), dp.get());
  EXPECT_EQ(runtime_.partition_manager().SpillStep(1 << 20), 0u);
  EXPECT_TRUE(dp->resident());
}

TEST_F(PartitionManagerTest, SpillPrefersFarFromFinishLine) {
  // near_t feeds a task adjacent to the finish line; far_t one two hops away.
  const TypeId far_t = TypeIds::Get("pm.far");
  const TypeId mid_t = TypeIds::Get("pm.mid");
  const TypeId near_t = TypeIds::Get("pm.near");
  auto make_spec = [](const char* name, TypeId in, TypeId out) {
    TaskSpec spec;
    spec.name = name;
    spec.input_type = in;
    spec.output_type = out;
    spec.factory = [] { return std::unique_ptr<ITaskBase>(); };
    return spec;
  };
  runtime_.graph().Register(make_spec("far", far_t, mid_t));
  runtime_.graph().Register(make_spec("near", mid_t, near_t));
  runtime_.FinalizeGraph();

  auto far_dp = MakeQueued(far_t, 10);
  auto near_dp = MakeQueued(mid_t, 10);
  // Ask for just one partition's worth: the far one must be chosen.
  runtime_.partition_manager().SpillStep(5 << 10);
  EXPECT_FALSE(far_dp->resident());
  EXPECT_TRUE(near_dp->resident());
}

TEST_F(PartitionManagerTest, ThrashControlSkipsRecentlyLoaded) {
  const TypeId t = TypeIds::Get("pm.thrash");
  auto a = MakeQueued(t, 10);
  auto b = MakeQueued(t, 10);
  a->Spill();
  a->EnsureResident();  // Fresh load stamp on |a|.
  // b was never (re)loaded; its stamp is its construction time, also recent —
  // both are "recent", so the fallback spills the oldest-loaded first (b).
  runtime_.partition_manager().SpillStep(5 << 10);
  EXPECT_TRUE(a->resident());
  EXPECT_FALSE(b->resident());
}

}  // namespace
}  // namespace itask::core
