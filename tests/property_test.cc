// Property tests: invariants that must hold for every seed, size and
// injection point.
//
//  - OME injected at EVERY tuple index of a pipeline still yields the exact
//    pressure-free result (the discard-restart path loses work, never data).
//  - Random partition op sequences (append/spill/load/prefix-release/transfer)
//    preserve content and leave heap accounting balanced.
//  - serde round-trips hold for randomized values.
//  - The managed heap's invariants hold under concurrent alloc/free/collect.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>

#include "cluster/cluster.h"
#include "cluster/itask_job.h"
#include "common/rng.h"
#include "itask/typed_partition.h"

namespace itask::core {
namespace {

struct WordTraits {
  using Tuple = std::string;
  static std::uint64_t SizeOf(const Tuple& t) { return t.size() + 40; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteString(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadString(); }
};
using WordsPartition = VectorPartition<WordTraits>;

struct CountKv {
  using Key = std::string;
  using Value = std::uint64_t;
  static std::uint64_t EntryOverhead() { return 48; }
  static std::uint64_t KeyBytes(const Key& k) { return k.size(); }
  static std::uint64_t ValueBytes(const Value&) { return 8; }
  static void WriteEntry(serde::Writer& w, const Key& k, const Value& v) {
    w.WriteString(k);
    w.WriteVarint(v);
  }
  static std::pair<Key, Value> ReadEntry(serde::Reader& r) {
    Key k = r.ReadString();
    Value v = r.ReadVarint();
    return {std::move(k), v};
  }
};
using CountsPartition = HashAggPartition<CountKv>;

// Counts words; artificially throws OutOfMemoryError the |fail_at|-th time a
// tuple is processed across the whole job (-1 = never). Exercises the
// OME-as-forced-interrupt machinery at a precise injection point.
class FaultyCountTask : public ITask<WordsPartition> {
 public:
  FaultyCountTask(TypeId out_type, std::atomic<int>* fuse) : out_type_(out_type), fuse_(fuse) {}

  void Initialize(TaskContext& ctx) override {
    output_ = std::make_shared<CountsPartition>(out_type_, ctx.heap(), ctx.spill());
  }
  void Process(TaskContext& /*ctx*/, const std::string& word) override {
    // Half-apply before the injected failure: the discard-restart path must
    // throw this partial effect away.
    output_->MergeEntry(word, 1, [](std::uint64_t& into, const std::uint64_t& from) {
      into += from;
      return 0;
    });
    if (fuse_->fetch_sub(1) == 1) {
      throw memsim::OutOfMemoryError("injected");
    }
  }
  void Interrupt(TaskContext& ctx) override { EmitOutput(ctx); }
  void Cleanup(TaskContext& ctx) override { EmitOutput(ctx); }

 private:
  void EmitOutput(TaskContext& ctx) {
    if (output_ && output_->TupleCount() > 0) {
      output_->set_tag(0);
      ctx.Emit(std::move(output_));
    }
    output_.reset();
  }
  TypeId out_type_;
  std::atomic<int>* fuse_;
  std::shared_ptr<CountsPartition> output_;
};

class MergeCounts : public MITask<CountsPartition> {
 public:
  explicit MergeCounts(TypeId out_type) : out_type_(out_type) {}
  void Initialize(TaskContext& ctx) override {
    output_ = std::make_shared<CountsPartition>(out_type_, ctx.heap(), ctx.spill());
  }
  void Process(TaskContext& /*ctx*/, const std::pair<std::string, std::uint64_t>& e) override {
    output_->MergeEntry(e.first, e.second, [](std::uint64_t& into, const std::uint64_t& from) {
      into += from;
      return 0;
    });
  }
  void Interrupt(TaskContext& ctx) override {
    output_->set_tag(ctx.group_tag);
    ctx.Emit(std::move(output_));
  }
  void Cleanup(TaskContext& ctx) override { ctx.EmitToSink(std::move(output_)); }

 private:
  TypeId out_type_;
  std::shared_ptr<CountsPartition> output_;
};

// 60 words, 3 per partition: every Process call is a potential fault site.
constexpr int kWords = 60;

std::map<std::string, std::uint64_t> RunWithFault(int fail_at) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 32 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = 2;
  cluster::ItaskJob job(cl, irs);
  const TypeId words_t = TypeIds::Get("prop.words");
  const TypeId counts_t = TypeIds::Get("prop.counts");

  static std::atomic<int> fuse;
  fuse.store(fail_at < 0 ? -1'000'000 : fail_at + 1);

  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "count";
    spec.input_type = words_t;
    spec.output_type = counts_t;
    spec.factory = [counts_t] { return std::make_unique<FaultyCountTask>(counts_t, &fuse); };
    return spec;
  });
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "merge";
    spec.input_type = counts_t;
    spec.output_type = counts_t;
    spec.is_merge = true;
    spec.factory = [counts_t] { return std::make_unique<MergeCounts>(counts_t); };
    return spec;
  });

  std::map<std::string, std::uint64_t> result;
  std::mutex mu;
  job.SetSinkPerNode([&](int) {
    return [&](PartitionPtr out) {
      auto* counts = static_cast<CountsPartition*>(out.get());
      std::lock_guard lock(mu);
      for (std::size_t i = 0; i < counts->TupleCount(); ++i) {
        result[counts->At(i).first] += counts->At(i).second;
      }
      out->DropPayload();
    };
  });

  const bool ok = job.Run([&] {
    common::Rng rng(7);
    std::shared_ptr<WordsPartition> part;
    for (int i = 0; i < kWords; ++i) {
      if (part == nullptr) {
        part = std::make_shared<WordsPartition>(words_t, &cl.node(0).heap(),
                                                &cl.node(0).spill());
      }
      part->Append("w" + std::to_string(rng.NextBelow(7)));
      if (part->TupleCount() == 3) {
        part->Spill();
        job.runtime(0).Push(std::move(part));
        part.reset();
      }
    }
  });
  EXPECT_TRUE(ok);
  return result;
}

class OmeInjectionTest : public ::testing::TestWithParam<int> {};

TEST_P(OmeInjectionTest, InjectedOmeNeverChangesTheResult) {
  static const std::map<std::string, std::uint64_t> reference = RunWithFault(-1);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(RunWithFault(GetParam()), reference);
}

INSTANTIATE_TEST_SUITE_P(EveryTupleIndex, OmeInjectionTest,
                         ::testing::Range(0, kWords, 1));

// ---- Randomized partition op sequences ----

class PartitionOpsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionOpsTest, RandomOpSequencePreservesContentAndAccounting) {
  memsim::HeapConfig hc;
  hc.capacity_bytes = 64 << 20;
  hc.real_pauses = false;
  memsim::ManagedHeap heap_a(hc);
  memsim::ManagedHeap heap_b(hc);
  serde::SpillManager spill_a(std::filesystem::temp_directory_path(), "propa");
  serde::SpillManager spill_b(std::filesystem::temp_directory_path(), "propb");

  common::Rng rng(GetParam());
  const TypeId t = TypeIds::Get("prop.ops");
  auto dp = std::make_shared<WordsPartition>(t, &heap_a, &spill_a);
  std::vector<std::string> model;  // Unprocessed suffix, in order.
  bool on_a = true;

  for (int step = 0; step < 200; ++step) {
    switch (rng.NextBelow(5)) {
      case 0: {  // Append (only while resident).
        if (dp->resident()) {
          std::string w = "x" + std::to_string(rng.NextBelow(1000));
          dp->Append(w);
          model.push_back(std::move(w));
        }
        break;
      }
      case 1:
        dp->Spill();
        break;
      case 2:
        dp->EnsureResident();
        break;
      case 3: {  // Consume a few tuples then release the prefix.
        if (dp->resident() && dp->TupleCount() > 0) {
          const std::size_t n = 1 + rng.NextBelow(dp->TupleCount());
          dp->set_cursor(n);
          dp->ReleaseProcessedPrefix();
          model.erase(model.begin(), model.begin() + static_cast<std::ptrdiff_t>(n));
        }
        break;
      }
      case 4: {  // Transfer between nodes.
        on_a = !on_a;
        dp->TransferTo(on_a ? &heap_a : &heap_b, on_a ? &spill_a : &spill_b);
        break;
      }
    }
  }
  dp->EnsureResident();
  ASSERT_EQ(dp->TupleCount(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(dp->At(i), model[i]);
  }
  // Accounting balances once the partition is destroyed.
  dp.reset();
  heap_a.Collect();
  heap_b.Collect();
  EXPECT_EQ(heap_a.live_bytes(), 0u);
  EXPECT_EQ(heap_b.live_bytes(), 0u);
  EXPECT_EQ(heap_a.garbage_bytes(), 0u);
  EXPECT_EQ(heap_b.garbage_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionOpsTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---- Heap under concurrent churn with collections ----

TEST(HeapConcurrencyTest, InvariantsHoldUnderChurnAndCollections) {
  memsim::HeapConfig hc;
  hc.capacity_bytes = 8 << 20;
  hc.real_pauses = false;
  memsim::ManagedHeap heap(hc);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      common::Rng rng(static_cast<std::uint64_t>(t) + 99);
      while (!stop.load()) {
        const std::uint64_t bytes = 64 + rng.NextBelow(4096);
        if (heap.TryAllocate(bytes)) {
          heap.Free(bytes);
        } else {
          failures.fetch_add(1);
        }
        // Invariant: used never exceeds capacity.
        ASSERT_LE(heap.used_bytes(), hc.capacity_bytes + 6 * 4160);
      }
    });
  }
  std::thread collector([&] {
    while (!stop.load()) {
      heap.Collect();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  collector.join();
  heap.Collect();
  EXPECT_EQ(heap.live_bytes(), 0u);
  EXPECT_EQ(heap.garbage_bytes(), 0u);
  const auto stats = heap.Stats();
  EXPECT_GT(stats.gc_count, 0u);
  EXPECT_LE(stats.peak_used_bytes, hc.capacity_bytes + 6 * 4160);
}

// ---- serde randomized round-trips ----

class SerdeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerdeFuzzTest, RandomMixedStreamsRoundTrip) {
  common::Rng rng(GetParam());
  common::ByteBuffer buf;
  serde::Writer w(&buf);
  struct Item {
    int kind;
    std::uint64_t u;
    std::int64_t i;
    double d;
    std::string s;
  };
  std::vector<Item> items;
  for (int n = 0; n < 2'000; ++n) {
    Item item;
    item.kind = static_cast<int>(rng.NextBelow(4));
    switch (item.kind) {
      case 0:
        item.u = rng.NextU64() >> rng.NextBelow(64);
        w.WriteVarint(item.u);
        break;
      case 1:
        item.i = static_cast<std::int64_t>(rng.NextU64());
        w.WriteI64(item.i);
        break;
      case 2:
        item.d = static_cast<double>(rng.NextU64()) * 0.5;
        w.WriteDouble(item.d);
        break;
      case 3:
        item.s.assign(rng.NextBelow(64), static_cast<char>('a' + rng.NextBelow(26)));
        w.WriteString(item.s);
        break;
    }
    items.push_back(std::move(item));
  }
  serde::Reader r(&buf);
  for (const Item& item : items) {
    switch (item.kind) {
      case 0:
        ASSERT_EQ(r.ReadVarint(), item.u);
        break;
      case 1:
        ASSERT_EQ(r.ReadI64(), item.i);
        break;
      case 2:
        ASSERT_EQ(r.ReadDouble(), item.d);
        break;
      case 3:
        ASSERT_EQ(r.ReadString(), item.s);
        break;
    }
  }
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzzTest, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace itask::core

// ---- Network-fault engine properties: every seed, every link ----
//
// The reproducibility contract behind `chaos_run --net-faults=<seed>`: the
// fault decision stream for a link is a pure function of (plan seed, link,
// frame serial) — independent of what other links do, and free of decision
// combinations (a dropped frame that also duplicates) that would break the
// ledger's (node,split,epoch,seq) dedup or the fabric's ack pairing.

#include "net/fault_engine.h"

namespace itask::net {
namespace {

class NetFaultSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetFaultSeedTest, SeededPlansReplayIdenticalDecisionStreams) {
  const NetFaultPlan plan = NetFaultPlan::FromSeed(GetParam());
  ASSERT_TRUE(plan.active());

  // Engine A serves four links round-robin; engine B serves them link-major.
  // Interleaving must not matter: per-link streams are keyed by serial.
  NetFaultEngine a(plan);
  NetFaultEngine b(plan);
  constexpr int kFrames = 400;
  const int dsts[] = {0, 1, 2, 3};
  std::vector<NetFaultEngine::Decision> a_stream[4];
  for (int frame = 0; frame < kFrames; ++frame) {
    for (const int dst : dsts) {
      a_stream[dst].push_back(a.Apply(dst, 256));
    }
  }
  for (const int dst : dsts) {
    for (int frame = 0; frame < kFrames; ++frame) {
      const auto got = b.Apply(dst, 256);
      const auto& expect = a_stream[dst][static_cast<std::size_t>(frame)];
      ASSERT_EQ(got.serial, expect.serial) << "dst " << dst << " frame " << frame;
      EXPECT_EQ(got.drop, expect.drop);
      EXPECT_EQ(got.duplicate, expect.duplicate);
      EXPECT_EQ(got.reorder, expect.reorder);
      EXPECT_EQ(got.reset, expect.reset);
      EXPECT_DOUBLE_EQ(got.delay_ms, expect.delay_ms);
    }
  }

  // Dedup/ack-pairing safety: destroyed frames never also duplicate or
  // reorder, and at most one destructive fault fires per frame.
  std::uint64_t fired = 0;
  for (const int dst : dsts) {
    for (const auto& d : a_stream[dst]) {
      EXPECT_LE(static_cast<int>(d.drop) + static_cast<int>(d.corrupt) +
                    static_cast<int>(d.truncate) + static_cast<int>(d.reset),
                1);
      if (d.drop || d.reset) {
        EXPECT_FALSE(d.duplicate);
        EXPECT_FALSE(d.reorder);
      }
      if (d.delay_ms > 0.0) {
        // Delays stay inside the plan's jitter envelope.
        EXPECT_GE(d.delay_ms, plan.delay_ms - plan.delay_jitter_ms - 1e-9);
        EXPECT_LE(d.delay_ms, plan.delay_ms + plan.delay_jitter_ms + 1e-9);
      }
      fired += static_cast<std::uint64_t>(d.faults);
    }
  }
  // Seeded plans are moderate but not inert: over 1600 frames something fired.
  EXPECT_GT(fired, 0u);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFaultSeedTest,
                         ::testing::Values(1u, 7u, 42u, 1234567u, 0xdeadbeefu));

}  // namespace
}  // namespace itask::net
