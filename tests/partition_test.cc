// DataPartition hot-path regressions: TransferTo must not hold state_mu_
// across its OME backoff sleeps (a pressured destination used to wedge every
// spill pass touching the partition for up to 10 s), and EnsureResident's
// bounded reload-retry loop must count its attempts where chaos_run can see
// them (SpillStats::load_retries) while leaving the spill frame loadable.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>

#include "itask/typed_partition.h"
#include "memsim/managed_heap.h"
#include "serde/spill_manager.h"

namespace itask::core {
namespace {

struct U64Traits {
  using Tuple = std::uint64_t;
  static std::uint64_t SizeOf(const Tuple&) { return 16; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteVarint(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadVarint(); }
};
using U64Partition = VectorPartition<U64Traits>;

memsim::HeapConfig HeapOf(std::uint64_t capacity) {
  memsim::HeapConfig config;
  config.capacity_bytes = capacity;
  config.real_pauses = false;
  return config;
}

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest()
      : src_heap_(HeapOf(16 << 20)),
        spill_(std::filesystem::temp_directory_path(), "partition-test") {}

  std::shared_ptr<U64Partition> MakePartition(std::size_t tuples) {
    auto p = std::make_shared<U64Partition>(/*type=*/1, &src_heap_, &spill_);
    for (std::size_t i = 0; i < tuples; ++i) {
      p->Append(i);
    }
    return p;
  }

  memsim::ManagedHeap src_heap_;
  serde::SpillManager spill_;
};

// Regression: TransferTo used to hold the partition's state lock across its
// entire destination-OME retry loop (1 ms sleep x 10000 attempts), so any
// concurrent Spill/Purge/prefetch blocked for up to 10 s. The lock is now
// released across each sleep; a spill pass that sneaks into the gap must see
// the transferring_ flag and decline (the payload is empty mid-move — spilling
// it would corrupt resident_/spill_id_ under the transfer loop).
TEST_F(PartitionTest, TransferToReleasesLockAcrossPressureRetries) {
  constexpr std::size_t kTuples = 64;  // 64 x 16 = 1024 managed bytes.
  auto dp = MakePartition(kTuples);

  // Destination with room for the payload, but stuffed full by a blocker so
  // the transfer's DeserializeFrom throws OME until the blocker releases.
  memsim::ManagedHeap dest_heap(HeapOf(4 << 10));
  dest_heap.Allocate(4 << 10);

  std::atomic<bool> transferred{false};
  std::thread mover([&] {
    dp->TransferTo(&dest_heap, &spill_);
    transferred.store(true, std::memory_order_release);
  });

  // Give the transfer time to serialize the payload and enter its retry loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(transferred.load(std::memory_order_acquire));

  // A concurrent spill pass must return promptly (the old code blocked here
  // until the transfer completed) and must refuse to touch the mid-move
  // payload.
  const auto spill_start = std::chrono::steady_clock::now();
  EXPECT_EQ(dp->Spill(), 0u);
  const auto spill_wait = std::chrono::steady_clock::now() - spill_start;
  EXPECT_LT(spill_wait, std::chrono::milliseconds(500));
  EXPECT_FALSE(transferred.load(std::memory_order_acquire));

  // Relieve the destination; the transfer must finish with the payload intact
  // and charged against the destination heap.
  dest_heap.Free(4 << 10);
  mover.join();
  ASSERT_TRUE(transferred.load(std::memory_order_acquire));
  EXPECT_TRUE(dp->resident());
  ASSERT_EQ(dp->TupleCount(), kTuples);
  for (std::size_t i = 0; i < kTuples; ++i) {
    EXPECT_EQ(dp->At(i), i);
  }
  EXPECT_EQ(dp->PayloadBytes(), kTuples * 16);
  EXPECT_EQ(src_heap_.live_bytes(), 0u);
  EXPECT_EQ(dest_heap.live_bytes(), kTuples * 16);

  // Post-transfer the partition spills/loads against the destination normally.
  EXPECT_EQ(dp->Spill(), kTuples * 16);
  dp->EnsureResident();
  EXPECT_EQ(dp->TupleCount(), kTuples);
}

// A persistent read fault exhausts EnsureResident's bounded retry loop; every
// re-attempt must be counted in SpillStats::load_retries and the spill frame
// must stay loadable once the fault clears (injected read failures throw
// before the entry or file is removed).
TEST_F(PartitionTest, EnsureResidentCountsLoadRetriesAndKeepsFrameLoadable) {
  constexpr std::size_t kTuples = 32;
  auto dp = MakePartition(kTuples);
  ASSERT_EQ(dp->Spill(), kTuples * 16);
  ASSERT_FALSE(dp->resident());

  serde::SpillFailureInjection inject;
  inject.read_probability = 1.0;  // Every load attempt faults.
  spill_.SetFailureInjection(inject);
  EXPECT_THROW(dp->EnsureResident(), std::runtime_error);
  // 8 attempts: the first 7 failures are retried (and counted), the 8th
  // propagates.
  EXPECT_EQ(spill_.Stats().load_retries, 7u);
  EXPECT_FALSE(dp->resident());

  spill_.SetFailureInjection(serde::SpillFailureInjection{});
  dp->EnsureResident();
  EXPECT_TRUE(dp->resident());
  ASSERT_EQ(dp->TupleCount(), kTuples);
  for (std::size_t i = 0; i < kTuples; ++i) {
    EXPECT_EQ(dp->At(i), i);
  }
  EXPECT_EQ(spill_.Stats().load_retries, 7u);  // Clean loads add none.
}

// A transient fault (first load fails, second succeeds) must resolve inside
// EnsureResident without surfacing to the caller.
TEST_F(PartitionTest, EnsureResidentRetriesThroughTransientReadFault) {
  auto dp = MakePartition(8);

  serde::SpillFailureInjection inject;
  inject.every_nth = 2;  // Ops alternate ok/fail; the retry lands on ok.
  spill_.SetFailureInjection(inject);
  ASSERT_GT(dp->Spill(), 0u);  // Op 1: the write, passes.
  dp->EnsureResident();        // Op 2 faults; the retry (op 3) loads clean.
  EXPECT_TRUE(dp->resident());
  EXPECT_EQ(dp->TupleCount(), 8u);
  EXPECT_GE(spill_.Stats().load_retries, 1u);
}

}  // namespace
}  // namespace itask::core
