// End-to-end tests of the ITask Runtime System: pipelines run to completion
// under pressure-free and heavily pressured heaps, producing identical
// results; interrupts, staged release, merge grouping, cross-node routing and
// abort paths all behave as specified.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <numeric>

#include "cluster/cluster.h"
#include "cluster/itask_job.h"
#include "itask/typed_partition.h"
#include "workloads/text.h"

namespace itask::core {
namespace {

// ---- Shared test traits ----

struct WordTraits {
  using Tuple = std::string;
  static std::uint64_t SizeOf(const Tuple& t) { return t.size() + 40; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteString(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadString(); }
};
using WordsPartition = VectorPartition<WordTraits>;

struct CountTraits {
  using Key = std::string;
  using Value = std::uint64_t;
  static std::uint64_t EntryOverhead() { return 48; }
  static std::uint64_t KeyBytes(const Key& k) { return k.size(); }
  static std::uint64_t ValueBytes(const Value&) { return 8; }
  static void WriteEntry(serde::Writer& w, const Key& k, const Value& v) {
    w.WriteString(k);
    w.WriteVarint(v);
  }
  static std::pair<Key, Value> ReadEntry(serde::Reader& r) {
    Key k = r.ReadString();
    Value v = r.ReadVarint();
    return {std::move(k), v};
  }
};
using CountsPartition = HashAggPartition<CountTraits>;

struct BlockTraits {
  using Tuple = std::uint64_t;
  // Each tuple models a bulky record (4KB of managed payload).
  static std::uint64_t SizeOf(const Tuple&) { return 4096; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteVarint(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadVarint(); }
};
using BlocksPartition = VectorPartition<BlockTraits>;

// ---- WordCount pipeline: Count (ITask) -> MergeCounts (MITask) -> sink ----

class CountTask : public ITask<WordsPartition> {
 public:
  explicit CountTask(TypeId out_type) : out_type_(out_type) {}

  void Initialize(TaskContext& ctx) override {
    output_ = std::make_shared<CountsPartition>(out_type_, ctx.heap(), ctx.spill());
  }
  void Process(TaskContext& /*ctx*/, const std::string& word) override {
    output_->Upsert(word, [](std::uint64_t& v) {
      ++v;
      return 0;
    });
  }
  void Interrupt(TaskContext& ctx) override {
    output_->set_tag(0);
    ctx.Emit(std::move(output_));
  }
  void Cleanup(TaskContext& ctx) override {
    output_->set_tag(0);
    ctx.Emit(std::move(output_));
  }

 private:
  TypeId out_type_;
  std::shared_ptr<CountsPartition> output_;
};

class MergeCountsTask : public MITask<CountsPartition> {
 public:
  explicit MergeCountsTask(TypeId out_type) : out_type_(out_type) {}

  void Initialize(TaskContext& ctx) override {
    output_ = std::make_shared<CountsPartition>(out_type_, ctx.heap(), ctx.spill());
  }
  void Process(TaskContext& /*ctx*/, const std::pair<std::string, std::uint64_t>& e) override {
    output_->Upsert(e.first, [&](std::uint64_t& v) {
      v += e.second;
      return 0;
    });
  }
  void Interrupt(TaskContext& ctx) override {
    output_->set_tag(ctx.group_tag);  // Becomes its own input (paper Fig. 7).
    ctx.Emit(std::move(output_));
  }
  void Cleanup(TaskContext& ctx) override { ctx.EmitToSink(std::move(output_)); }

 private:
  TypeId out_type_;
  std::shared_ptr<CountsPartition> output_;
};

struct WordCountResult {
  std::map<std::string, std::uint64_t> counts;
  common::RunMetrics metrics;
  bool ok = false;
};

WordCountResult RunWordCount(std::uint64_t heap_bytes, std::uint64_t corpus_bytes,
                             std::uint64_t vocabulary, int max_workers = 4) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = heap_bytes;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = max_workers;
  cluster::ItaskJob job(cl, irs);

  const TypeId words_t = TypeIds::Get("wc.words");
  const TypeId counts_t = TypeIds::Get("wc.counts");

  job.RegisterTaskPerNode([&](int /*node*/) {
    TaskSpec spec;
    spec.name = "count";
    spec.input_type = words_t;
    spec.output_type = counts_t;
    spec.factory = [counts_t] { return std::make_unique<CountTask>(counts_t); };
    return spec;
  });
  job.RegisterTaskPerNode([&](int /*node*/) {
    TaskSpec spec;
    spec.name = "merge";
    spec.input_type = counts_t;
    spec.output_type = counts_t;
    spec.is_merge = true;
    spec.factory = [counts_t] { return std::make_unique<MergeCountsTask>(counts_t); };
    return spec;
  });

  WordCountResult result;
  std::mutex sink_mu;
  job.SetSinkPerNode([&](int /*node*/) {
    return [&](PartitionPtr out) {
      auto* counts = static_cast<CountsPartition*>(out.get());
      std::lock_guard lock(sink_mu);
      for (std::size_t i = 0; i < counts->TupleCount(); ++i) {
        result.counts[counts->At(i).first] += counts->At(i).second;
      }
      out->DropPayload();
    };
  });

  workloads::TextConfig tc;
  tc.target_bytes = corpus_bytes;
  tc.vocabulary = vocabulary;

  result.ok = job.Run([&] {
    auto& rt = job.runtime(0);
    auto part = std::make_shared<WordsPartition>(words_t, &cl.node(0).heap(), &cl.node(0).spill());
    workloads::ForEachWord(tc, [&](const std::string& word) {
      part->Append(word);
      if (part->TupleCount() >= 256) {
        part->Spill();  // Inputs start disk-resident, like HDFS blocks.
        rt.Push(std::move(part));
        part = std::make_shared<WordsPartition>(words_t, &cl.node(0).heap(), &cl.node(0).spill());
      }
    });
    if (part->TupleCount() > 0) {
      part->Spill();
      rt.Push(std::move(part));
    }
  });
  result.metrics = job.Metrics();
  return result;
}

std::map<std::string, std::uint64_t> ReferenceCounts(std::uint64_t corpus_bytes,
                                                     std::uint64_t vocabulary) {
  workloads::TextConfig tc;
  tc.target_bytes = corpus_bytes;
  tc.vocabulary = vocabulary;
  std::map<std::string, std::uint64_t> counts;
  workloads::ForEachWord(tc, [&](const std::string& word) { ++counts[word]; });
  return counts;
}

TEST(IrsWordCountTest, PressureFreeRunMatchesReference) {
  const auto result = RunWordCount(/*heap=*/32 << 20, /*corpus=*/256 << 10, /*vocab=*/500);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.counts, ReferenceCounts(256 << 10, 500));
}

TEST(IrsWordCountTest, PressuredRunMatchesReference) {
  // Heap sized so the working set forces interrupts and lazy serialization.
  const auto result = RunWordCount(/*heap=*/600 << 10, /*corpus=*/512 << 10, /*vocab=*/2'000);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.counts, ReferenceCounts(512 << 10, 2'000));
}

TEST(IrsWordCountTest, MetricsArePopulated) {
  const auto result = RunWordCount(32 << 20, 128 << 10, 300);
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.metrics.wall_ms, 0.0);
  EXPECT_GT(result.metrics.peak_heap_bytes, 0u);
}

// ---- Bulky pipeline: Expand (big outputs) -> Drain (sums) -> sink ----

class ExpandTask : public ITask<BlocksPartition> {
 public:
  explicit ExpandTask(TypeId out_type) : out_type_(out_type) {}

  void Initialize(TaskContext& ctx) override {
    output_ = std::make_shared<BlocksPartition>(out_type_, ctx.heap(), ctx.spill());
  }
  void Process(TaskContext& /*ctx*/, const std::uint64_t& v) override { output_->Append(v); }
  void Interrupt(TaskContext& ctx) override { ctx.Emit(std::move(output_)); }
  void Cleanup(TaskContext& ctx) override { ctx.Emit(std::move(output_)); }

 private:
  TypeId out_type_;
  std::shared_ptr<BlocksPartition> output_;
};

struct SumTraits {
  using Tuple = std::uint64_t;
  static std::uint64_t SizeOf(const Tuple&) { return 16; }
  static void Write(serde::Writer& w, const Tuple& t) { w.WriteVarint(t); }
  static Tuple Read(serde::Reader& r) { return r.ReadVarint(); }
};
using SumPartition = VectorPartition<SumTraits>;

class DrainTask : public ITask<BlocksPartition> {
 public:
  explicit DrainTask(TypeId out_type) : out_type_(out_type) {}

  void Initialize(TaskContext& /*ctx*/) override { sum_ = 0; }
  void Process(TaskContext& /*ctx*/, const std::uint64_t& v) override { sum_ += v; }
  void Interrupt(TaskContext& ctx) override { EmitSum(ctx); }
  void Cleanup(TaskContext& ctx) override { EmitSum(ctx); }

 private:
  void EmitSum(TaskContext& ctx) {
    auto out = std::make_shared<SumPartition>(out_type_, ctx.heap(), ctx.spill());
    out->Append(sum_);
    ctx.Emit(std::move(out));  // Terminal type -> sink.
    sum_ = 0;
  }
  TypeId out_type_;
  std::uint64_t sum_ = 0;
};

TEST(IrsPressureTest, BulkyPipelineSurvivesSmallHeap) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 1 << 20;  // 1MB heap, ~4MB flowing through.
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = 4;
  cluster::ItaskJob job(cl, irs);

  const TypeId in_t = TypeIds::Get("bulk.in");
  const TypeId mid_t = TypeIds::Get("bulk.mid");
  const TypeId out_t = TypeIds::Get("bulk.out");

  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "expand";
    spec.input_type = in_t;
    spec.output_type = mid_t;
    spec.factory = [mid_t] { return std::make_unique<ExpandTask>(mid_t); };
    return spec;
  });
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "drain";
    spec.input_type = mid_t;
    spec.output_type = out_t;
    spec.factory = [out_t] { return std::make_unique<DrainTask>(out_t); };
    return spec;
  });

  std::atomic<std::uint64_t> total{0};
  job.SetSinkPerNode([&](int) {
    return [&](PartitionPtr out) {
      auto* sums = static_cast<SumPartition*>(out.get());
      for (std::size_t i = 0; i < sums->TupleCount(); ++i) {
        total.fetch_add(sums->At(i));
      }
      out->DropPayload();
    };
  });

  constexpr std::uint64_t kTuples = 1024;  // 1024 * 4KB = 4MB of flow.
  const bool ok = job.Run([&] {
    auto& rt = job.runtime(0);
    for (std::uint64_t base = 0; base < kTuples; base += 64) {
      auto part = std::make_shared<BlocksPartition>(in_t, &cl.node(0).heap(), &cl.node(0).spill());
      for (std::uint64_t i = base; i < base + 64; ++i) {
        part->Append(i + 1);
      }
      part->Spill();
      rt.Push(std::move(part));
    }
  });
  ASSERT_TRUE(ok);
  EXPECT_EQ(total.load(), kTuples * (kTuples + 1) / 2);

  const auto metrics = job.Metrics();
  // The working set exceeds the heap several times over; the IRS must have
  // interrupted tasks and/or lazily serialized partitions to survive.
  EXPECT_GT(metrics.interrupts + metrics.lugc_count + metrics.spilled_bytes, 0u);
  EXPECT_LE(metrics.peak_heap_bytes, cc.heap.capacity_bytes);
}

// ---- Abort path: a tuple that can never fit ----

class HugeAllocTask : public ITask<SumPartition> {
 public:
  void Initialize(TaskContext&) override {}
  void Process(TaskContext& ctx, const std::uint64_t&) override {
    // 10x the heap: impossible regardless of interrupts.
    memsim::HeapCharge charge(ctx.heap(), ctx.heap()->capacity() * 10);
  }
  void Interrupt(TaskContext&) override {}
  void Cleanup(TaskContext&) override {}
};

TEST(IrsAbortTest, ImpossibleTupleAbortsJob) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 1 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = 2;
  irs.max_no_progress = 3;  // Fail fast in the test.
  cluster::ItaskJob job(cl, irs);

  const TypeId in_t = TypeIds::Get("abort.in");
  const TypeId out_t = TypeIds::Get("abort.out");
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "huge";
    spec.input_type = in_t;
    spec.output_type = out_t;
    spec.factory = [] { return std::make_unique<HugeAllocTask>(); };
    return spec;
  });

  const bool ok = job.Run([&] {
    auto part = std::make_shared<SumPartition>(in_t, &cl.node(0).heap(), &cl.node(0).spill());
    part->Append(1);
    job.runtime(0).Push(std::move(part));
  });
  EXPECT_FALSE(ok);
}

// ---- Cross-node routing ----

TEST(IrsMultiNodeTest, RemotePushRechargesTargetHeap) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.heap.capacity_bytes = 8 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = 2;
  cluster::ItaskJob job(cl, irs);

  const TypeId in_t = TypeIds::Get("xnode.in");
  const TypeId out_t = TypeIds::Get("xnode.out");

  // Expand on node 0 routes its output to node 1's drain via PushRemote.
  job.RegisterTaskPerNode([&](int node) {
    TaskSpec spec;
    spec.name = "expand";
    spec.input_type = in_t;
    spec.output_type = out_t;
    spec.factory = [out_t] { return std::make_unique<ExpandTask>(out_t); };
    if (node == 0) {
      spec.route_output = [&job](PartitionPtr out, bool) {
        job.runtime(1).PushRemote(std::move(out));
      };
    }
    return spec;
  });
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "drain";
    spec.input_type = out_t;
    spec.output_type = TypeIds::Get("xnode.sum");
    spec.factory = [] { return std::make_unique<DrainTask>(TypeIds::Get("xnode.sum")); };
    return spec;
  });

  std::atomic<std::uint64_t> total{0};
  job.SetSinkPerNode([&](int) {
    return [&](PartitionPtr out) {
      auto* sums = static_cast<SumPartition*>(out.get());
      for (std::size_t i = 0; i < sums->TupleCount(); ++i) {
        total.fetch_add(sums->At(i));
      }
      out->DropPayload();
    };
  });

  const bool ok = job.Run([&] {
    auto part = std::make_shared<BlocksPartition>(in_t, &cl.node(0).heap(), &cl.node(0).spill());
    for (std::uint64_t i = 1; i <= 100; ++i) {
      part->Append(i);
    }
    part->Spill();
    job.runtime(0).Push(std::move(part));
  });
  ASSERT_TRUE(ok);
  EXPECT_EQ(total.load(), 5050u);
}

// ---- Lifecycle: Stop/Start cycles must be idempotent and restartable ----

TEST(IrsLifecycleTest, RepeatedStartStopCyclesAreSafe) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 4 << 20;
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  cluster::Node& node = cl.node(0);
  NodeServices services{node.id(),    node.name(),  &node.heap(),
                        &node.spill(), node.tracer(), &node.async_spill()};
  IrsConfig irs;
  irs.max_workers = 2;
  irs.monitor_period = std::chrono::milliseconds(1);
  IrsRuntime rt(services, irs, std::make_shared<JobState>());
  rt.FinalizeGraph();

  // Before the restart fixes, cycle 2's workers exited immediately (stale
  // scheduler stop flag) or the monitor raced a stale pressure/stop state.
  for (int i = 0; i < 100; ++i) {
    rt.Start();
    rt.Stop();
  }
  // Stop must also be idempotent.
  rt.Stop();
  rt.Stop();
}

TEST(IrsLifecycleTest, SameJobRunsTwiceOnTheSameRuntimes) {
  cluster::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.heap.capacity_bytes = 600 << 10;  // Pressured: interrupts both runs.
  cc.heap.real_pauses = false;
  cluster::Cluster cl(cc);

  IrsConfig irs;
  irs.max_workers = 4;
  cluster::ItaskJob job(cl, irs);

  const TypeId words_t = TypeIds::Get("restart.words");
  const TypeId counts_t = TypeIds::Get("restart.counts");
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "count";
    spec.input_type = words_t;
    spec.output_type = counts_t;
    spec.factory = [counts_t] { return std::make_unique<CountTask>(counts_t); };
    return spec;
  });
  job.RegisterTaskPerNode([&](int) {
    TaskSpec spec;
    spec.name = "merge";
    spec.input_type = counts_t;
    spec.output_type = counts_t;
    spec.is_merge = true;
    spec.factory = [counts_t] { return std::make_unique<MergeCountsTask>(counts_t); };
    return spec;
  });

  std::map<std::string, std::uint64_t> counts;
  std::mutex sink_mu;
  job.SetSinkPerNode([&](int) {
    return [&](PartitionPtr out) {
      auto* cp = static_cast<CountsPartition*>(out.get());
      std::lock_guard lock(sink_mu);
      for (std::size_t i = 0; i < cp->TupleCount(); ++i) {
        counts[cp->At(i).first] += cp->At(i).second;
      }
      out->DropPayload();
    };
  });

  workloads::TextConfig tc;
  tc.target_bytes = 256 << 10;
  tc.vocabulary = 1'000;
  const auto feed = [&] {
    auto& rt = job.runtime(0);
    auto part = std::make_shared<WordsPartition>(words_t, &cl.node(0).heap(), &cl.node(0).spill());
    workloads::ForEachWord(tc, [&](const std::string& word) {
      part->Append(word);
      if (part->TupleCount() >= 256) {
        part->Spill();
        rt.Push(std::move(part));
        part = std::make_shared<WordsPartition>(words_t, &cl.node(0).heap(), &cl.node(0).spill());
      }
    });
    if (part->TupleCount() > 0) {
      part->Spill();
      rt.Push(std::move(part));
    }
  };

  const auto reference = ReferenceCounts(256 << 10, 1'000);
  for (int run = 0; run < 2; ++run) {
    counts.clear();
    ASSERT_TRUE(job.Run(feed)) << "run " << run;
    EXPECT_EQ(counts, reference) << "run " << run;
  }
}

// ---- OME-interrupt accounting (Table 2 / abort backoff) ----

class OmeAccountingTest : public ::testing::Test {
 protected:
  OmeAccountingTest() {
    cc_.num_nodes = 1;
    cc_.heap.capacity_bytes = 4 << 20;
    cc_.heap.real_pauses = false;
    cl_ = std::make_unique<cluster::Cluster>(cc_);
    cluster::Node& node = cl_->node(0);
    NodeServices services{node.id(),    node.name(),  &node.heap(),
                          &node.spill(), node.tracer(), &node.async_spill()};
    IrsConfig irs;
    irs.max_workers = 2;
    irs.monitor_period = std::chrono::milliseconds(1);
    irs.max_no_progress = 4;
    state_ = std::make_shared<JobState>();
    rt_ = std::make_unique<IrsRuntime>(services, irs, state_);
    rt_->FinalizeGraph();
  }

  PartitionPtr MakePartition() {
    auto dp = std::make_shared<SumPartition>(TypeIds::Get("ome.acct"), &cl_->node(0).heap(),
                                             &cl_->node(0).spill());
    dp->Append(1);
    return dp;
  }

  cluster::ClusterConfig cc_;
  std::unique_ptr<cluster::Cluster> cl_;
  std::shared_ptr<JobState> state_;
  std::unique_ptr<IrsRuntime> rt_;
};

TEST_F(OmeAccountingTest, EachOmeCountsOnceAndRaisesPressure) {
  const auto dp = MakePartition();
  EXPECT_FALSE(rt_->pressure());
  rt_->NoteOmeInterrupt(dp, /*tuples_processed=*/10);
  EXPECT_EQ(rt_->NodeMetrics().ome_interrupts, 1u);
  EXPECT_TRUE(rt_->pressure());
  // One OME, one count — progress or not; the pressure edge fires once.
  rt_->NoteOmeInterrupt(dp, /*tuples_processed=*/0);
  EXPECT_EQ(rt_->NodeMetrics().ome_interrupts, 2u);
}

TEST_F(OmeAccountingTest, ProgressResetsNoProgressBackoff) {
  const auto dp = MakePartition();
  rt_->NoteOmeInterrupt(dp, 0);
  rt_->NoteOmeInterrupt(dp, 0);
  EXPECT_EQ(dp->no_progress(), 2);
  rt_->NoteOmeInterrupt(dp, /*tuples_processed=*/5);
  EXPECT_EQ(dp->no_progress(), 0);
  EXPECT_FALSE(state_->aborted.load());
}

TEST_F(OmeAccountingTest, SustainedZeroProgressAbortsTheJob) {
  const auto dp = MakePartition();
  // max_no_progress = 4: the fifth consecutive zero-progress OME aborts.
  for (int i = 0; i < 4; ++i) {
    rt_->NoteOmeInterrupt(dp, 0);
    EXPECT_FALSE(state_->aborted.load()) << "attempt " << i;
  }
  rt_->NoteOmeInterrupt(dp, 0);
  EXPECT_TRUE(state_->aborted.load());
  EXPECT_EQ(rt_->NodeMetrics().ome_interrupts, 5u);
}

}  // namespace
}  // namespace itask::core
