#include <gtest/gtest.h>

#include <filesystem>

#include "common/byte_buffer.h"
#include "common/rng.h"
#include "serde/serializer.h"
#include "serde/spill_manager.h"

namespace itask::serde {
namespace {

TEST(SerializerTest, VarintRoundTrip) {
  common::ByteBuffer buf;
  Writer w(&buf);
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1ULL << 20, 1ULL << 40, ~0ULL};
  for (auto v : values) {
    w.WriteVarint(v);
  }
  Reader r(&buf);
  for (auto v : values) {
    EXPECT_EQ(r.ReadVarint(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, VarintRoundTripRandomized) {
  common::Rng rng(1234);
  common::ByteBuffer buf;
  Writer w(&buf);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10'000; ++i) {
    // Mix of magnitudes.
    const int shift = static_cast<int>(rng.NextBelow(64));
    values.push_back(rng.NextU64() >> shift);
    w.WriteVarint(values.back());
  }
  Reader r(&buf);
  for (auto v : values) {
    ASSERT_EQ(r.ReadVarint(), v);
  }
}

TEST(SerializerTest, ZigZagRoundTrip) {
  const std::int64_t values[] = {0, -1, 1, -1000, 1000, INT64_MIN, INT64_MAX};
  for (auto v : values) {
    EXPECT_EQ(Reader::UnZigZag(Writer::ZigZag(v)), v);
  }
}

TEST(SerializerTest, SignedRoundTrip) {
  common::ByteBuffer buf;
  Writer w(&buf);
  w.WriteI64(-42);
  w.WriteI64(42);
  Reader r(&buf);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadI64(), 42);
}

TEST(SerializerTest, StringRoundTrip) {
  common::ByteBuffer buf;
  Writer w(&buf);
  w.WriteString("");
  w.WriteString("hello");
  w.WriteString(std::string(10'000, 'z'));
  Reader r(&buf);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString().size(), 10'000u);
}

TEST(SerializerTest, MixedPayloadRoundTrip) {
  common::ByteBuffer buf;
  Writer w(&buf);
  w.WriteU8(7);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(1ULL << 50);
  w.WriteDouble(2.718);
  w.WriteString("key");
  Reader r(&buf);
  EXPECT_EQ(r.ReadU8(), 7);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 1ULL << 50);
  EXPECT_EQ(r.ReadDouble(), 2.718);
  EXPECT_EQ(r.ReadString(), "key");
}

class SpillManagerTest : public ::testing::Test {
 protected:
  SpillManagerTest() : spill_(std::filesystem::temp_directory_path(), "test") {}
  SpillManager spill_;
};

TEST_F(SpillManagerTest, SpillLoadRoundTrip) {
  common::ByteBuffer buf;
  Writer w(&buf);
  w.WriteString("payload");
  w.WriteU64(99);
  const auto id = spill_.Spill(buf);
  common::ByteBuffer loaded = spill_.LoadAndRemove(id);
  Reader r(&loaded);
  EXPECT_EQ(r.ReadString(), "payload");
  EXPECT_EQ(r.ReadU64(), 99u);
}

TEST_F(SpillManagerTest, StatsTrackBytes) {
  common::ByteBuffer buf;
  buf.bytes().resize(1000, 0x5a);
  const auto id1 = spill_.Spill(buf);
  const auto id2 = spill_.Spill(buf);
  auto stats = spill_.Stats();
  EXPECT_EQ(stats.spilled_bytes, 2000u);
  EXPECT_EQ(stats.live_files, 2u);
  spill_.LoadAndRemove(id1);
  spill_.Remove(id2);
  stats = spill_.Stats();
  EXPECT_EQ(stats.loaded_bytes, 1000u);
  EXPECT_EQ(stats.live_files, 0u);
  EXPECT_EQ(stats.live_file_bytes, 0u);
}

TEST_F(SpillManagerTest, LoadUnknownIdThrows) {
  EXPECT_THROW(spill_.LoadAndRemove(12345), std::runtime_error);
}

TEST_F(SpillManagerTest, LoadedFileIsRemovedFromDisk) {
  common::ByteBuffer buf;
  buf.bytes().resize(10, 1);
  const auto id = spill_.Spill(buf);
  spill_.LoadAndRemove(id);
  EXPECT_THROW(spill_.LoadAndRemove(id), std::runtime_error);
}

TEST(SpillManagerLifetimeTest, DirectoryRemovedOnDestruction) {
  std::filesystem::path dir;
  {
    SpillManager spill(std::filesystem::temp_directory_path(), "lifetime");
    dir = spill.directory();
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_FALSE(std::filesystem::exists(dir));
}

}  // namespace
}  // namespace itask::serde
